// Scalar, SSE2 and NEON instantiations of the bank-search kernels, plus
// the tier dispatch table. The AVX2 instantiation lives in
// bank_kernels_avx2.cpp (its own translation unit compiled with -mavx2);
// this file only calls through its table when CMake compiled it in, so a
// build without the AVX2 unit still links and clamps avx2 requests down
// to SSE2.
#include "core/bank_kernels_impl.h"

namespace mempart::bank {

const Kernels& kernels_for(simd::Tier tier) {
  static const Kernels scalar = make_kernels<simd::I64x1>(simd::Tier::kScalar);
#if defined(MEMPART_SIMD_X86)
  // SSE2 keeps the vector pair scan and divisibility probe (mullo is real
  // 32x32 partial products; the leu spill is two stores against a saved
  // division) but probes the bitset with the scalar kernel: gather AND
  // shl1 both spill per lane there, losing to one scalar shift.
  static const Kernels sse2 = [] {
    Kernels k = make_kernels<simd::I64x2>(simd::Tier::kSse2);
    k.table_has_multiple = scalar.table_has_multiple;
    return k;
  }();
  if (tier == simd::Tier::kAvx2) {
#if defined(MEMPART_HAVE_AVX2_BANK_KERNELS)
    return avx2_kernels();
#else
    return sse2;
#endif
  }
  if (tier == simd::Tier::kSse2) return sse2;
#elif defined(MEMPART_SIMD_NEON)
  // NEON: vector pair scan, scalar probes — the bitset probe spills on
  // gather/shl1 like SSE2, and mullo spills too (no 64-bit vector
  // multiply), which forfeits the divisibility probe's win.
  static const Kernels neon = [] {
    Kernels k = make_kernels<simd::I64x2>(simd::Tier::kNeon);
    k.table_has_multiple = scalar.table_has_multiple;
    k.any_divisible = scalar.any_divisible;
    return k;
  }();
  if (tier == simd::Tier::kNeon) return neon;
#endif
  (void)tier;
  return scalar;
}

}  // namespace mempart::bank
