#include "core/overhead.h"

#include "common/errors.h"
#include "common/math_util.h"

namespace mempart {
namespace {

Count leading_volume(const NdShape& shape) {
  Count v = 1;
  for (int d = 0; d + 1 < shape.rank(); ++d) {
    v = checked_mul(v, shape.extent(d));
  }
  return v;
}

}  // namespace

Count storage_overhead_elements(const NdShape& shape, Count banks) {
  MEMPART_REQUIRE(banks >= 1, "storage_overhead_elements: banks must be >= 1");
  const Count innermost = shape.extent(shape.rank() - 1);
  const Count padding = round_up(innermost, banks) - innermost;
  return checked_mul(padding, leading_volume(shape));
}

Count max_storage_overhead_elements(const NdShape& shape, Count banks) {
  MEMPART_REQUIRE(banks >= 1,
                  "max_storage_overhead_elements: banks must be >= 1");
  return checked_mul(banks - 1, leading_volume(shape));
}

double storage_overhead_ratio(const NdShape& shape, Count banks) {
  return static_cast<double>(storage_overhead_elements(shape, banks)) /
         static_cast<double>(shape.volume());
}

}  // namespace mempart
