// Multi-array partitioning (§3: "Parallel access to data elements in
// multiple memory arrays implies accessing data from each memory array in
// parallel, which can be realized by partitioning each memory array into
// several banks according to its corresponding access pattern").
//
// Real loop bodies read several arrays (LoG reads X; a bilateral filter
// reads image + guidance; Sobel reads a volume and writes gradients). Each
// array is partitioned independently for its own pattern; the aggregate
// report gives the totals a designer budgets against: bank count, block-RAM
// overhead, and the whole-body initiation interval (the max over arrays).
#pragma once

#include <string>
#include <vector>

#include "core/partitioner.h"

namespace mempart {

/// One array and how the loop body touches it.
struct ArrayAccess {
  std::string name;                 ///< array identifier for the report
  PartitionRequest request;         ///< pattern / shape / constraints
};

/// A solved array in the aggregate.
struct NamedSolution {
  std::string name;
  PartitionSolution solution;
};

/// Aggregate over all arrays of a loop body.
struct MultiPartitionResult {
  std::vector<NamedSolution> arrays;

  /// Sum of bank counts over all arrays.
  [[nodiscard]] Count total_banks() const;

  /// Sum of storage overheads in elements (arrays with shapes only).
  [[nodiscard]] Count total_overhead_elements() const;

  /// The loop body's access II: the slowest array gates every iteration.
  [[nodiscard]] Count access_cycles() const;

  /// Total arithmetic spent solving.
  [[nodiscard]] OpTally total_ops() const;
};

/// Partitions every array independently. Throws on the first invalid
/// request (nothing is partially returned).
[[nodiscard]] MultiPartitionResult partition_arrays(
    const std::vector<ArrayAccess>& accesses);

}  // namespace mempart
