// Bank-count constraint handling (paper §4.3.2): N_f may exceed the
// hardware budget N_max, in which case two strategies apply.
//
// FAST FOLDING: F = ceil(N_f / N_max) accesses per cycle suffice if banks
// are folded in groups of F: N_c = ceil(N_f / F) and
// B(x) = ((alpha . x) mod N_f) mod N_c. delta_P becomes F - 1; bank sizes
// are unequal when N_c does not divide N_f (some folded banks merge F
// original banks, the last may merge fewer).
//
// SAME-SIZE SWEEP: evaluate delta_P|N for every N in [1, N_max] directly
// from the residue histogram and pick the N with minimal delta_P (the
// smallest such N by default; the paper notes several N may tie, e.g. LoG
// with N_max = 10 admits N_c = 7 or 9). All banks are cut from the array
// uniformly, so sizes stay equal.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "core/linear_transform.h"
#include "pattern/pattern.h"

namespace mempart {

/// How to respect N <= N_max when the unconstrained optimum N_f exceeds it.
enum class ConstraintStrategy {
  kFastFold,   ///< fold banks; minimal work, possibly unequal bank sizes
  kSameSize,   ///< sweep N in [1, N_max] minimising delta_P; equal bank sizes
};

/// Result of applying a bank-count constraint.
struct ConstrainedBanks {
  Count num_banks = 0;        ///< N_c actually used
  Count fold_factor = 1;      ///< F (fast folding; 1 when N_f <= N_max)
  Count delta_ii = 0;         ///< resulting delta_P
  ConstraintStrategy strategy = ConstraintStrategy::kFastFold;

  /// delta_P|N for N = 1..N_max (same-size sweep only; empty otherwise).
  /// sweep[N-1] corresponds to bank count N, mirroring the §5.1 case table.
  std::vector<Count> sweep;
};

/// Applies the fast folding strategy. Requires nf >= 1, nmax >= 1.
[[nodiscard]] ConstrainedBanks constrain_fast(Count nf, Count nmax);

/// Applies the same-size sweep strategy over the transformed values.
/// Requires nmax >= 1. Picks the smallest N achieving the minimal delta_P.
[[nodiscard]] ConstrainedBanks constrain_same_size(std::span<const Address> z,
                                                   Count nmax);

/// The full delta_P|N table for N = 1..nmax (the §5.1 case-study table).
[[nodiscard]] std::vector<Count> delta_sweep(std::span<const Address> z,
                                             Count nmax);

}  // namespace mempart
