// Complete bank mapping (B, F) for a concrete array (paper §4.4).
//
// B(x) selects the bank; F(x) the address inside it. The paper's insight is
// that only the innermost coordinate x_{n-1} needs remapping: with
// v = alpha . x and K' = ceil(w_{n-1} / N),
//
//     B(x)     = v mod N
//     x_new    = floor((v mod K'N) / N)          in [0, K')
//     F(x)     = (x_0, ..., x_{n-2}, x_new)
//
// For fixed leading coordinates, v mod K'N is a bijection of x_{n-1}, so
// (B, F) is injective; the only waste is the innermost dimension padded from
// w_{n-1} to K'N — overhead (ceil(w_{n-1}/N)N - w_{n-1}) * prod_{k<n-1} w_k,
// versus the LTB baseline which pads every dimension.
//
// Two refinements from the paper are implemented as options:
//
//  * TailPolicy::kCompact (§4.4.2's zero-overhead alternative): elements with
//    x_{n-1} >= floor(w_{n-1}/N)*N — fewer than N per leading slice — are
//    appended compactly after the body region of their bank. Banks become
//    slightly unequal but total storage is exactly W.
//  * fold_modulus (§4.3.2 fast approach): B(x) = ((v mod N_f) mod N_c) with
//    the original bank's fold position appended to F so folded banks are
//    concatenations of the N_f conflict-free banks.
#pragma once

#include <optional>
#include <vector>

#include "common/nd.h"
#include "common/types.h"
#include "core/linear_transform.h"

namespace mempart {

/// Handling of the partial tail slice x_{n-1} in [K*N, w_{n-1}).
enum class TailPolicy {
  kPadded,   ///< pad innermost dim to ceil(w/N)*N: equal banks, some overhead
  kCompact,  ///< append tail elements compactly: zero overhead, unequal banks
};

/// Immutable (B, F) mapping of one array onto `num_banks` banks.
class BankMapping {
 public:
  struct Options {
    Count num_banks = 0;             ///< N (N_c when folding)
    Count fold_modulus = 0;          ///< N_f when folding, 0 = no folding
    TailPolicy tail = TailPolicy::kPadded;
  };

  /// Throws InvalidArgument on non-positive bank counts, rank mismatch, or
  /// fold_modulus < num_banks.
  BankMapping(NdShape array_shape, LinearTransform transform, Options options);

  [[nodiscard]] const NdShape& array_shape() const { return shape_; }
  [[nodiscard]] const LinearTransform& transform() const { return transform_; }
  [[nodiscard]] Count num_banks() const { return options_.num_banks; }
  [[nodiscard]] TailPolicy tail_policy() const { return options_.tail; }
  [[nodiscard]] bool folded() const { return options_.fold_modulus != 0; }

  /// The conflict-free modulus: N_f when folded, else num_banks. This is
  /// the N in B(x) = (alpha . x) mod N before any folding.
  [[nodiscard]] Count conflict_modulus() const { return modulus_; }

  /// K' = ceil(w_{n-1} / conflict_modulus): intra-bank slices per bank.
  [[nodiscard]] Count padded_slices() const { return padded_slices_; }

  /// Bank index B(x) in [0, num_banks). Requires x in the array domain.
  [[nodiscard]] Count bank_of(const NdIndex& x) const;

  /// Flat address F(x) inside bank_of(x); unique per (bank, address) pair.
  [[nodiscard]] Address offset_of(const NdIndex& x) const;

  /// Intra-bank coordinate (x_0, ..., x_{n-2}, x_new); unfolded mappings only.
  [[nodiscard]] NdIndex intra_bank_coord(const NdIndex& x) const;

  /// Allocated slots in bank `bank`. kCompact counts exact occupancy (walks
  /// the leading-coordinate domain on first use; cached thereafter).
  [[nodiscard]] Count bank_capacity(Count bank) const;

  /// Sum of all bank capacities W_b.
  [[nodiscard]] Count total_capacity() const;

  /// Storage overhead Delta W = W_b - W in elements (0 for kCompact).
  [[nodiscard]] Count storage_overhead_elements() const;

 private:
  /// v mod (conflict modulus): the pre-fold bank index in [0, modulus_).
  [[nodiscard]] Count raw_bank(Address v) const;

  /// Lazily builds, per bank, the sorted leading-flat indices of the tail
  /// elements mapped there (kCompact only). The tail offset of an element is
  /// then body_size + rank within its bank, which is what makes the compact
  /// policy overhead-free — and why the paper calls it "high complexity".
  const std::vector<std::vector<Address>>& compact_tail_index() const;

  NdShape shape_;
  LinearTransform transform_;
  Options options_;
  Count modulus_ = 0;         ///< N_f when folded, else N
  Count fold_factor_ = 1;     ///< ceil(modulus / num_banks)
  Count body_slices_ = 0;     ///< K  = floor(w_{n-1} / modulus)
  Count padded_slices_ = 0;   ///< K' = ceil(w_{n-1} / modulus)
  Count leading_volume_ = 1;  ///< prod_{k < n-1} w_k
  mutable std::optional<std::vector<std::vector<Address>>> compact_tails_;
};

}  // namespace mempart
