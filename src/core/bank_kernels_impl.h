// Template bodies of the bank-search kernels, instantiated per lane type
// by bank_kernels_base.cpp / bank_kernels_avx2.cpp. Included only by those
// translation units.
//
// All three kernels share one shape: a vector main loop over V::kLanes
// elements followed by a scalar tail, with the scalar instantiation
// (V = I64x1) degenerating to exactly the tail loop — which is what the
// differential tests and bench_solver compare the wider tiers against.
#pragma once

#include <bit>
#include <cstdint>

#include "core/bank_kernels.h"

namespace mempart::bank {

template <typename V>
void abs_diff_row(Address base, const Address* src, Count count,
                  std::int64_t* out) {
  constexpr Count kW = V::kLanes;
  Count j = 0;
  if constexpr (kW > 1) {
    const V vbase = V::broadcast(base);
    const V ones = V::broadcast(-1);
    for (; j + kW <= count; j += kW) {
      const V d = V::sub(vbase, V::load(src + j));
      // |d| = (d ^ sign) - sign with sign = all-ones where d < 0: the
      // two's-complement negate folds into the same two ops as the copy.
      const V sign = V::xor_(V::ge0_mask(d), ones);
      V::sub(V::xor_(d, sign), sign).store(out + j);
    }
  }
  for (; j < count; ++j) {
    const std::int64_t d = base - src[j];
    out[j] = d < 0 ? -d : d;
  }
}

template <typename V>
bool table_has_multiple(const std::uint64_t* bits, Count max_value, Count step,
                        Count* probes) {
  constexpr Count kW = V::kLanes;
  const auto* words = reinterpret_cast<const std::int64_t*>(bits);
  const Count kmax = max_value / step;  // largest k with k*step in range
  Count examined = 0;
  Count k = 2;
  if constexpr (kW > 1) {
    std::int64_t init[simd::kMaxLanes];
    for (Count j = 0; j < kW; ++j) init[j] = (k + j) * step;
    V idx = V::load(init);
    const V stride = V::broadcast(kW * step);
    const V low6 = V::broadcast(63);
    for (; k + kW - 1 <= kmax; k += kW) {
      const V word = V::gather(words, V::srl(idx, 6));
      const V bit = V::and_(word, V::shl1(V::and_(idx, low6)));
      examined += kW;
      if (bit.nonzero_mask() != 0) {
        *probes += examined;
        return true;
      }
      idx = V::add(idx, stride);
    }
  }
  for (; k <= kmax; ++k) {
    const Count d = k * step;
    ++examined;
    if ((bits[static_cast<std::size_t>(d >> 6)] >>
         (static_cast<std::uint64_t>(d) & 63)) &
        1) {
      *probes += examined;
      return true;
    }
  }
  *probes += examined;
  return false;
}

template <typename V>
bool any_divisible(const std::int64_t* diffs, Count count, Count divisor,
                   Count* probes) {
  const int s = std::countr_zero(static_cast<std::uint64_t>(divisor));
  const std::uint64_t t = static_cast<std::uint64_t>(divisor) >> s;
  // Newton iteration doubles correct low bits each round; t*t ends on at
  // least 3 correct bits (t odd), so 5 rounds cover all 64.
  std::uint64_t inv = t;
  for (int i = 0; i < 5; ++i) inv *= 2 - t * inv;
  const std::uint64_t thresh = ~std::uint64_t{0} / t;
  const std::uint64_t low_mask = (std::uint64_t{1} << s) - 1;
  constexpr Count kW = V::kLanes;
  Count j = 0;
  Count examined = 0;
  if constexpr (kW > 1) {
    const V vinv = V::broadcast(static_cast<std::int64_t>(inv));
    const V vthresh = V::broadcast(static_cast<std::int64_t>(thresh));
    const V vlow = V::broadcast(static_cast<std::int64_t>(low_mask));
    const V zero = V::broadcast(0);
    for (; j + kW <= count; j += kW) {
      const V x = V::load(diffs + j);
      // x <=u 0 is x == 0: the even-part test needs no dedicated eq0 op.
      const V even_ok = V::leu_mask(V::and_(x, vlow), zero);
      const V odd_ok = V::leu_mask(V::mullo(V::srl(x, s), vinv), vthresh);
      examined += kW;
      if (V::and_(even_ok, odd_ok).nonzero_mask() != 0) {
        *probes += examined;
        return true;
      }
    }
  }
  for (; j < count; ++j) {
    const auto x = static_cast<std::uint64_t>(diffs[j]);
    ++examined;
    if ((x & low_mask) == 0 && (x >> s) * inv <= thresh) {
      *probes += examined;
      return true;
    }
  }
  *probes += examined;
  return false;
}

template <typename V>
Kernels make_kernels(simd::Tier tier) {
  Kernels k;
  k.tier = tier;
  k.lanes = V::kLanes;
  k.abs_diff_row = &abs_diff_row<V>;
  k.table_has_multiple = &table_has_multiple<V>;
  k.any_divisible = &any_divisible<V>;
  return k;
}

}  // namespace mempart::bank
