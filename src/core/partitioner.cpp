#include "core/partitioner.h"

#include <algorithm>
#include <sstream>

#include "common/errors.h"
#include "common/math_util.h"
#include "core/delta_ii.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mempart {

Count PartitionSolution::access_cycles() const {
  return ceil_div(constraint.delta_ii + 1, bank_bandwidth);
}

Count PartitionSolution::storage_overhead_elements() const {
  MEMPART_REQUIRE(mapping.has_value(),
                  "PartitionSolution: no mapping (array_shape was not given)");
  return mapping->storage_overhead_elements();
}

std::string PartitionSolution::summary() const {
  std::ostringstream os;
  os << "banks=" << num_banks();
  if (constraint.fold_factor > 1) {
    os << " (folded from " << search.num_banks
       << ", F=" << constraint.fold_factor << ')';
  } else if (num_banks() != search.num_banks) {
    os << " (same-size, Nf=" << search.num_banks << ')';
  }
  os << " delta_II=" << delta_ii() << ' ' << transform.to_string();
  if (mapping.has_value()) {
    os << " overhead=" << mapping->storage_overhead_elements() << " elements";
  }
  os << " ops=" << ops.arithmetic();
  return os.str();
}

PartitionSolution Partitioner::solve(const PartitionRequest& request) {
  MEMPART_REQUIRE(request.pattern.has_value(),
                  "Partitioner::solve: request.pattern is required");
  const Pattern& pattern = *request.pattern;
  MEMPART_REQUIRE(request.max_banks >= 0,
                  "Partitioner::solve: max_banks must be >= 0");
  MEMPART_REQUIRE(request.bank_bandwidth >= 1,
                  "Partitioner::solve: bank_bandwidth must be >= 1");
  if (request.array_shape.has_value()) {
    MEMPART_REQUIRE(request.array_shape->rank() == pattern.rank(),
                    "Partitioner::solve: array rank != pattern rank");
  }

  obs::Span span("partitioner.solve");
  span.arg("m", pattern.size()).arg("rank", pattern.rank());

  OpScope scope;

  // Stage 1 (§4.1): closed-form transform. Normalise first so transformed
  // values stay small; B(x) only depends on alpha, not on the offsets'
  // origin. Skip the translation when the pattern already sits at the
  // origin (the common case) — this path runs in microseconds and is what
  // the execution-time column of Table 1 measures.
  bool already_normalized = true;
  for (int d = 0; d < pattern.rank() && already_normalized; ++d) {
    already_normalized = pattern.min_coord(d) == 0;
  }
  std::optional<Pattern> normalized_storage;
  if (!already_normalized) normalized_storage = pattern.normalized();
  const Pattern& normalized =
      already_normalized ? pattern : *normalized_storage;
  auto [transform, z] = [&normalized] {
    obs::Span stage("partitioner.transform");
    LinearTransform derived = LinearTransform::derive(normalized);
    std::vector<Address> values = derived.transform_values(normalized);
    return std::pair{std::move(derived), std::move(values)};
  }();

  // Stage 2 (§4.3.1): Algorithm 1 minimises the unconstrained bank count.
  // The difference-set diagnostics (the case-study's Q) are not materialised
  // here; call minimize_banks directly when you need them.
  BankSearchResult search = minimize_banks(z, /*collect_diagnostics=*/false);

  // Stage 3 (§4.3.2 + §5.1 bank combining): with bank bandwidth B, combining
  // B conflict-free banks into one keeps single-cycle access, so B tightens
  // the effective bank cap to ceil(N_f / B).
  Count effective_cap = request.max_banks;
  if (request.bank_bandwidth > 1) {
    const Count bandwidth_cap =
        ceil_div(search.num_banks, request.bank_bandwidth);
    effective_cap = effective_cap == 0 ? bandwidth_cap
                                       : std::min(effective_cap, bandwidth_cap);
  }
  ConstrainedBanks constraint;
  {
    obs::Span stage("partitioner.constrain");
    stage.arg("nf", search.num_banks).arg("cap", effective_cap);
    if (effective_cap == 0 || search.num_banks <= effective_cap) {
      constraint.num_banks = search.num_banks;
      constraint.fold_factor = 1;
      constraint.delta_ii = 0;
      constraint.strategy = request.strategy;
    } else if (request.strategy == ConstraintStrategy::kFastFold) {
      constraint = constrain_fast(search.num_banks, effective_cap);
    } else {
      constraint = constrain_same_size(z, effective_cap);
    }
  }

  PartitionSolution solution{
      .transform = std::move(transform),
      .search = std::move(search),
      .constraint = std::move(constraint),
      .transformed = std::move(z),
      .pattern_banks = {},
      .mapping = std::nullopt,
      .ops = {},
      .bank_bandwidth = request.bank_bandwidth,
  };

  // Final per-offset bank indices, through the fold when one is active.
  const bool folds = solution.constraint.fold_factor > 1;
  std::vector<Count> raw = bank_indices(
      solution.transformed,
      folds ? solution.search.num_banks : solution.constraint.num_banks);
  if (folds) {
    for (Count& b : raw) b %= solution.constraint.num_banks;
  }
  solution.pattern_banks = std::move(raw);

  if (request.array_shape.has_value()) {
    obs::Span stage("partitioner.mapping");
    BankMapping::Options options;
    options.num_banks = solution.constraint.num_banks;
    options.fold_modulus = folds ? solution.search.num_banks : 0;
    options.tail = request.tail;
    solution.mapping.emplace(*request.array_shape, solution.transform, options);
  }

  solution.ops = scope.tally();
  span.arg("banks", solution.num_banks()).arg("delta_ii", solution.delta_ii());
  obs::record_op_tally(solution.ops);
  obs::count("partitioner.solves");
  return solution;
}

}  // namespace mempart
