#include "core/partitioner.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/errors.h"
#include "common/math_util.h"
#include "common/parallel.h"
#include "core/delta_ii.h"
#include "obs/flight_recorder.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mempart {
namespace {

// Flat canonical cache key: solver options that shape the canonical solve,
// then the canonical form. Tail policy and the array shape are deliberately
// absent — they only affect the (never cached) BankMapping stage.
//
//   [0] max_banks  [1] bank_bandwidth  [2] strategy
//   [3] permutation allowed (the identity-forced fallback must not collide
//       with the permuted class)
//   [4] rank  [5] m  [6..6+n) canonical extents  [6+n..) sorted z values
// Alloc fence: the key buffer is caller-owned and reserve() is amortized —
// warm solves reuse its capacity (pinned by the zero-alloc cache test).
MEMPART_ALLOC_BOUNDARY void build_key(const PartitionRequest& request,
                                      const Canonicalizer::View& view,
                                      bool allow_permutation,
                                      std::vector<std::int64_t>& key) {
  key.clear();
  key.reserve(6 + view.extents.size() + view.sorted_values.size());
  key.push_back(request.max_banks);
  key.push_back(request.bank_bandwidth);
  key.push_back(static_cast<std::int64_t>(request.strategy));
  key.push_back(allow_permutation ? 1 : 0);
  key.push_back(static_cast<std::int64_t>(view.extents.size()));
  key.push_back(static_cast<std::int64_t>(view.values.size()));
  key.insert(key.end(), view.extents.begin(), view.extents.end());
  key.insert(key.end(), view.sorted_values.begin(), view.sorted_values.end());
}

// Mirror of the BankMapping constructor's innermost-remap injectivity
// preconditions (see bank_mapping.cpp). A rehydrated permuted alpha has
// alpha_{n-1} = w_j of some outer canonical dim, not necessarily 1, so a
// shaped request must be pre-checked; on failure the solver falls back to
// the identity (translation-only) canonical form, whose derived alpha ends
// in 1 and always passes.
bool remap_injective(const NdShape& shape, Count alpha_last, Count num_banks,
                     Count fold_modulus, TailPolicy tail) {
  const Count modulus = (fold_modulus == 0 || fold_modulus == num_banks)
                            ? num_banks
                            : fold_modulus;
  const Count innermost = shape.extent(shape.rank() - 1);
  if (tail == TailPolicy::kPadded) {
    const Count span = checked_mul(ceil_div(innermost, modulus), modulus);
    const Count period = span / gcd(euclid_mod(alpha_last, span), span);
    return innermost <= period;
  }
  const Count body_slices = innermost / modulus;
  if (body_slices > 0) {
    const Count body_span = body_slices * modulus;
    if (gcd(euclid_mod(alpha_last, body_span), body_span) != 1) return false;
  }
  const Count tail_len = innermost - body_slices * modulus;
  if (tail_len > 0) {
    const Count period =
        modulus / gcd(euclid_mod(alpha_last, modulus), modulus);
    if (tail_len > period) return false;
  }
  return true;
}

// The canonical solve: Algorithm 1 plus the constraint stage, both over the
// sorted canonical values only — everything a cache entry holds. Alloc
// fence: this is the cache-miss cold path; the warm path never enters it.
MEMPART_ALLOC_BOUNDARY std::shared_ptr<const CachedSolve> solve_core(
    const PartitionRequest& request, std::span<const Address> sorted_z,
    BankSearchScratch& scratch) {
  auto core = std::make_shared<CachedSolve>();

  // Stage 2 (§4.3.1): Algorithm 1 minimises the unconstrained bank count.
  // The difference-set diagnostics (the case-study's Q) are not materialised
  // here; call minimize_banks directly when you need them.
  core->search = minimize_banks(sorted_z, /*collect_diagnostics=*/false,
                                &scratch);

  // Stage 3 (§4.3.2 + §5.1 bank combining): with bank bandwidth B, combining
  // B conflict-free banks into one keeps single-cycle access, so B tightens
  // the effective bank cap to ceil(N_f / B).
  Count effective_cap = request.max_banks;
  if (request.bank_bandwidth > 1) {
    const Count bandwidth_cap =
        ceil_div(core->search.num_banks, request.bank_bandwidth);
    effective_cap = effective_cap == 0
                        ? bandwidth_cap
                        : std::min(effective_cap, bandwidth_cap);
  }
  {
    obs::Span stage("partitioner.constrain");
    stage.arg("nf", core->search.num_banks).arg("cap", effective_cap);
    if (effective_cap == 0 || core->search.num_banks <= effective_cap) {
      core->constraint.num_banks = core->search.num_banks;
      core->constraint.fold_factor = 1;
      core->constraint.delta_ii = 0;
      core->constraint.strategy = request.strategy;
    } else if (request.strategy == ConstraintStrategy::kFastFold) {
      core->constraint = constrain_fast(core->search.num_banks, effective_cap);
    } else {
      core->constraint = constrain_same_size(sorted_z, effective_cap);
    }
  }
  return core;
}

void validate(const PartitionRequest& request) {
  MEMPART_REQUIRE(request.pattern.has_value(),
                  "Partitioner::solve: request.pattern is required");
  MEMPART_REQUIRE(request.max_banks >= 0,
                  "Partitioner::solve: max_banks must be >= 0");
  MEMPART_REQUIRE(request.bank_bandwidth >= 1,
                  "Partitioner::solve: bank_bandwidth must be >= 1");
  if (request.array_shape.has_value()) {
    MEMPART_REQUIRE(request.array_shape->rank() == request.pattern->rank(),
                    "Partitioner::solve: array rank != pattern rank");
  }
}

}  // namespace

Count PartitionSolution::access_cycles() const {
  return ceil_div(constraint.delta_ii + 1, bank_bandwidth);
}

Count PartitionSolution::storage_overhead_elements() const {
  MEMPART_REQUIRE(mapping.has_value(),
                  "PartitionSolution: no mapping (array_shape was not given)");
  return mapping->storage_overhead_elements();
}

std::string PartitionSolution::summary() const {
  std::ostringstream os;
  os << "banks=" << num_banks();
  if (constraint.fold_factor > 1) {
    os << " (folded from " << search.num_banks
       << ", F=" << constraint.fold_factor << ')';
  } else if (num_banks() != search.num_banks) {
    os << " (same-size, Nf=" << search.num_banks << ')';
  }
  os << " delta_II=" << delta_ii() << ' ' << transform.to_string();
  if (mapping.has_value()) {
    os << " overhead=" << mapping->storage_overhead_elements() << " elements";
  }
  os << " ops=" << ops.arithmetic();
  return os.str();
}

void Partitioner::solve_impl(const PartitionRequest& request,
                             SolveCache* cache, Canonicalizer& canon,
                             BankSearchScratch& scratch,
                             std::vector<std::int64_t>& key,
                             PartitionSolution& out) {
  validate(request);
  const Pattern& pattern = *request.pattern;

  obs::Span span("partitioner.solve");
  span.arg("m", pattern.size()).arg("rank", pattern.rank());
  obs::LatencyTimer timer("partitioner.solve.ns");

  OpScope scope;

  bool allow_permutation = true;
  for (;;) {
    // Stage 1 (§4.1 generalised): canonicalize — translation-normalise,
    // sort dimensions by extent, derive the mixed-radix alpha rehydrated
    // into the caller's dimension order, and produce the transformed values
    // z(i) plus their sorted multiset (the canonical key / solver input).
    Canonicalizer::View view;
    {
      obs::Span stage("partitioner.transform");
      view = canon.run(pattern, allow_permutation);
    }

    std::shared_ptr<const CachedSolve> core;
    if (cache != nullptr) {
      build_key(request, view, allow_permutation, key);
      // Probe latency is split by outcome so a p99 regression in either the
      // sharded-map walk (miss) or the entry copy-out (hit) shows up alone.
      const bool timed = obs::metrics_enabled();
      const auto probe_start = timed ? std::chrono::steady_clock::now()
                                     : std::chrono::steady_clock::time_point();
      core = cache->find(key);
      if (timed) {
        const auto probe_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - probe_start)
                .count();
        obs::record_latency(
            core != nullptr ? "cache.find.hit.ns" : "cache.find.miss.ns",
            probe_ns);
      }
    }
    const bool hit = core != nullptr;
    if (!hit) {
      obs::LatencyTimer core_timer("partitioner.solve_core.ns");
      core = solve_core(request, view.sorted_values, scratch);
      if (cache != nullptr) {
        cache->insert(key, core);
      }
    }

    // A shaped request with a permuted alpha must satisfy the BankMapping
    // injectivity precondition; otherwise retry on the identity canonical
    // form (strictly fewer cache sharing opportunities, same guarantees as
    // the pre-cache solver).
    const bool folds = core->constraint.fold_factor > 1;
    if (request.array_shape.has_value() && !view.identity_perm &&
        !remap_injective(*request.array_shape, view.alpha.back(),
                         core->constraint.num_banks,
                         folds ? core->search.num_banks : 0, request.tail)) {
      allow_permutation = false;
      obs::count("partitioner.identity_fallbacks");
      continue;
    }

    // Rehydrate the per-request solution around the canonical core. Every
    // assignment reuses `out`'s existing buffer capacity, so a warm hit
    // allocates nothing.
    out.transform.assign(view.alpha);
    out.search = core->search;
    out.constraint = core->constraint;
    out.transformed.assign(view.values.begin(), view.values.end());
    out.bank_bandwidth = request.bank_bandwidth;

    // Final per-offset bank indices, through the fold when one is active.
    const Count modulus =
        folds ? core->search.num_banks : core->constraint.num_banks;
    out.pattern_banks.resize(view.values.size());  // mempart-analyze: allow(noalloc) caller-owned output buffer; warm solve_into reuses its capacity (pinned by the zero-alloc cache test)
    for (size_t i = 0; i < view.values.size(); ++i) {
      Count bank = euclid_mod(view.values[i], modulus);
      if (folds) bank = euclid_mod(bank, core->constraint.num_banks);
      out.pattern_banks[i] = bank;
    }

    out.mapping.reset();
    if (request.array_shape.has_value()) {
      obs::Span stage("partitioner.mapping");
      BankMapping::Options options;
      options.num_banks = out.constraint.num_banks;
      options.fold_modulus = folds ? out.search.num_banks : 0;
      options.tail = request.tail;
      out.mapping.emplace(*request.array_shape, out.transform, options);  // mempart-analyze: allow(noalloc) mapping stage runs only for shaped requests; the warm unshaped path never reaches it
    }

    out.ops = scope.tally();
    span.arg("banks", out.num_banks()).arg("delta_ii", out.delta_ii());
    span.arg("cache", hit ? "hit" : (cache != nullptr ? "miss" : "off"));
    obs::record_op_tally(out.ops);
    obs::count("partitioner.solves");
    return;
  }
}

PartitionSolution Partitioner::solve(const PartitionRequest& request) {
  Canonicalizer canon;
  BankSearchScratch scratch;
  std::vector<std::int64_t> key;
  PartitionSolution out;
  solve_impl(request, /*cache=*/nullptr, canon, scratch, key, out);
  return out;
}

Partitioner::Partitioner(SolveCache* cache) : cache_(cache) {}

PartitionSolution Partitioner::solve_cached(const PartitionRequest& request) {
  PartitionSolution out;
  solve_into(request, out);
  return out;
}

void Partitioner::solve_into(const PartitionRequest& request,
                             PartitionSolution& out) {
  solve_impl(request, cache_, canon_, search_scratch_, key_, out);
}

std::vector<BatchResult> Partitioner::solve_many_collect(
    std::span<const PartitionRequest> requests, const BatchOptions& options) {
  MEMPART_REQUIRE(options.min_grain >= 1,
                  "Partitioner::solve_many: min_grain must be >= 1");
  const Count n = static_cast<Count>(requests.size());
  std::vector<BatchResult> results(requests.size());
  if (n == 0) return results;

  obs::Span span("partitioner.solve_many");
  span.arg("requests", n);
  obs::LatencyTimer timer("partitioner.solve_many.ns");

  // Phase 1 (sequential): canonicalize every request and deduplicate by
  // cache key. Requests the canonicalizer itself rejects (malformed, or
  // overflowing the 64-bit weight space) take their error slot here.
  struct KeyHash {
    size_t operator()(const std::vector<std::int64_t>& key) const noexcept {
      return static_cast<size_t>(SolveCache::hash_key(key));
    }
  };
  std::unordered_map<std::vector<std::int64_t>, Count, KeyHash> classes;
  std::vector<Count> representatives;  // first request index per class
  std::vector<std::int64_t> key;
  {
    obs::Span stage("partitioner.solve_many.canonicalize");
    obs::LatencyTimer stage_timer("partitioner.solve_many.canonicalize.ns");
    for (Count i = 0; i < n; ++i) {
      const PartitionRequest& request = requests[static_cast<size_t>(i)];
      try {
        validate(request);
        const Canonicalizer::View view = canon_.run(request.pattern.value());
        build_key(request, view, /*allow_permutation=*/true, key);
        const auto [it, inserted] = classes.try_emplace(
            key, static_cast<Count>(representatives.size()));
        if (inserted) representatives.push_back(i);
        // Classify before phase 2 warms the cache: a peek now says whether
        // this request rides an existing entry or waits on a cold solve.
        results[static_cast<size_t>(i)].cache_hit =
            cache_ != nullptr && cache_->contains(key);
      } catch (const Error& error) {
        results[static_cast<size_t>(i)].error = error.what();
      }
    }
    stage.arg("classes", static_cast<Count>(representatives.size()));
  }
  span.arg("classes", static_cast<Count>(representatives.size()));

  const Count threads =
      options.threads == 0 ? default_thread_count() : options.threads;
  ThreadPool pool(threads);

  // Phase 2: solve each distinct canonical class once, fanned out in
  // chunks. This populates the cache (when bound), so phase 3 is all hits;
  // without a cache it simply warms nothing and phase 3 re-solves.
  if (cache_ != nullptr && representatives.size() > 1) {
    pool.parallel_for_chunked(
        static_cast<Count>(representatives.size()), options.min_grain,
        [&](Count begin, Count end) {
          // Worker-thread chunks get their own span + latency sample, so a
          // trace shows per-chunk occupancy and the histogram shows chunk
          // skew (p50 vs p99 chunk time) across the pool.
          obs::Span chunk_span("partitioner.solve_many.prime");
          chunk_span.arg("begin", begin).arg("end", end);
          obs::LatencyTimer chunk_timer("partitioner.solve_many.chunk.ns");
          // The chunk span is the flight-ring narrative; the per-request
          // spans inside solve_impl are detail and would otherwise dominate
          // the always-on recorder's cost in this loop.
          const obs::FlightQuietScope quiet;
          Canonicalizer canon;
          BankSearchScratch scratch;
          std::vector<std::int64_t> chunk_key;
          PartitionSolution scratch_solution;
          for (Count c = begin; c < end; ++c) {
            const size_t index =
                static_cast<size_t>(representatives[static_cast<size_t>(c)]);
            try {
              solve_impl(requests[index], cache_, canon, scratch, chunk_key,
                         scratch_solution);
            } catch (const Error&) {
              // Recorded per-request in phase 3; priming is best-effort.
            }
          }
        });
  }

  // Phase 3: rehydrate every request (in parallel chunks, results written
  // by index — deterministic output order at any thread count).
  pool.parallel_for_chunked(
      n, options.min_grain, [&](Count begin, Count end) {
        obs::Span chunk_span("partitioner.solve_many.rehydrate");
        chunk_span.arg("begin", begin).arg("end", end);
        obs::LatencyTimer chunk_timer("partitioner.solve_many.chunk.ns");
        const obs::FlightQuietScope quiet;
        Canonicalizer canon;
        BankSearchScratch scratch;
        std::vector<std::int64_t> chunk_key;
        for (Count i = begin; i < end; ++i) {
          BatchResult& slot = results[static_cast<size_t>(i)];
          if (!slot.error.empty()) continue;
          try {
            PartitionSolution solution;
            solve_impl(requests[static_cast<size_t>(i)], cache_, canon,
                       scratch, chunk_key, solution);
            slot.solution.emplace(std::move(solution));
          } catch (const Error& error) {
            slot.error = error.what();
          }
        }
      });

  return results;
}

std::vector<PartitionSolution> Partitioner::solve_many(
    std::span<const PartitionRequest> requests, const BatchOptions& options) {
  std::vector<BatchResult> collected = solve_many_collect(requests, options);
  std::vector<PartitionSolution> out;
  out.reserve(collected.size());
  for (size_t i = 0; i < collected.size(); ++i) {
    if (!collected[i].ok()) {
      std::ostringstream os;
      os << "Partitioner::solve_many: request " << i << ": "
         << collected[i].error;
      throw InvalidArgument(os.str());
    }
    out.push_back(std::move(*collected[i].solution));
  }
  return out;
}

}  // namespace mempart
