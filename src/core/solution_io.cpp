#include "core/solution_io.h"

#include <map>
#include <sstream>

#include "common/errors.h"

namespace mempart {
namespace {

constexpr const char* kHeader = "mempart-solution v1";

std::string join_counts(const std::vector<Count>& values, char sep) {
  std::ostringstream os;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << sep;
    os << values[i];
  }
  return os.str();
}

std::vector<Count> split_counts(const std::string& text, char sep,
                                const std::string& context) {
  std::vector<Count> out;
  std::istringstream is(text);
  std::string piece;
  while (std::getline(is, piece, sep)) {
    try {
      size_t used = 0;
      out.push_back(std::stoll(piece, &used));
      if (used != piece.size()) throw std::invalid_argument(piece);
    } catch (const std::exception&) {
      throw InvalidArgument("solution record: bad integer '" + piece +
                            "' in " + context);
    }
  }
  MEMPART_REQUIRE(!out.empty(), "solution record: empty list in " + context);
  return out;
}

std::string offsets_to_text(const Pattern& pattern) {
  std::ostringstream os;
  const auto& offsets = pattern.offsets();
  for (size_t i = 0; i < offsets.size(); ++i) {
    if (i > 0) os << ';';
    os << '(' << join_counts(offsets[i], ',') << ')';
  }
  return os.str();
}

Pattern offsets_from_text(const std::string& text, const std::string& name) {
  std::vector<NdIndex> offsets;
  std::istringstream is(text);
  std::string piece;
  while (std::getline(is, piece, ';')) {
    MEMPART_REQUIRE(piece.size() >= 3 && piece.front() == '(' &&
                        piece.back() == ')',
                    "solution record: malformed offset '" + piece + "'");
    offsets.push_back(split_counts(piece.substr(1, piece.size() - 2), ',',
                                   "pattern.offsets"));
  }
  return Pattern(std::move(offsets), name);
}

}  // namespace

std::string write_solution_record(const PartitionRequest& request,
                                  const PartitionSolution& solution) {
  MEMPART_REQUIRE(request.pattern.has_value(),
                  "write_solution_record: request has no pattern");
  std::ostringstream os;
  os << kHeader << '\n';
  os << "pattern.name " << (request.pattern->name().empty()
                                ? "unnamed"
                                : request.pattern->name())
     << '\n';
  os << "pattern.offsets " << offsets_to_text(*request.pattern) << '\n';
  if (request.array_shape.has_value()) {
    os << "shape " << join_counts(request.array_shape->extents(), ',') << '\n';
  }
  os << "max_banks " << request.max_banks << '\n';
  os << "bandwidth " << request.bank_bandwidth << '\n';
  os << "strategy "
     << (request.strategy == ConstraintStrategy::kFastFold ? "fast"
                                                           : "same-size")
     << '\n';
  os << "tail "
     << (request.tail == TailPolicy::kPadded ? "padded" : "compact") << '\n';
  os << "alpha " << join_counts(solution.transform.alpha(), ',') << '\n';
  os << "nf " << solution.search.num_banks << '\n';
  os << "nc " << solution.num_banks() << '\n';
  os << "fold " << solution.constraint.fold_factor << '\n';
  os << "delta " << solution.delta_ii() << '\n';
  return os.str();
}

SolutionRecord read_solution_record(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  MEMPART_REQUIRE(std::getline(is, line) && line == kHeader,
                  "solution record: missing 'mempart-solution v1' header");

  std::map<std::string, std::string> fields;
  while (std::getline(is, line)) {
    if (line.empty() || line.front() == '#') continue;
    const size_t space = line.find(' ');
    MEMPART_REQUIRE(space != std::string::npos && space > 0,
                    "solution record: malformed line '" + line + "'");
    // Strip trailing comments.
    std::string value = line.substr(space + 1);
    const size_t hash = value.find(" #");
    if (hash != std::string::npos) value.resize(hash);
    while (!value.empty() && value.back() == ' ') value.pop_back();
    fields[line.substr(0, space)] = value;
  }

  auto required = [&](const std::string& key) -> const std::string& {
    const auto it = fields.find(key);
    MEMPART_REQUIRE(it != fields.end(),
                    "solution record: missing field '" + key + "'");
    return it->second;
  };

  SolutionRecord record;
  record.request.pattern = offsets_from_text(required("pattern.offsets"),
                                             required("pattern.name"));
  if (const auto it = fields.find("shape"); it != fields.end()) {
    record.request.array_shape = NdShape(split_counts(it->second, ',', "shape"));
  }
  record.request.max_banks = split_counts(required("max_banks"), ',',
                                          "max_banks")[0];
  record.request.bank_bandwidth =
      split_counts(required("bandwidth"), ',', "bandwidth")[0];
  const std::string& strategy = required("strategy");
  if (strategy == "fast") {
    record.request.strategy = ConstraintStrategy::kFastFold;
  } else if (strategy == "same-size") {
    record.request.strategy = ConstraintStrategy::kSameSize;
  } else {
    throw InvalidArgument("solution record: unknown strategy '" + strategy +
                          "'");
  }
  const std::string& tail = required("tail");
  if (tail == "padded") {
    record.request.tail = TailPolicy::kPadded;
  } else if (tail == "compact") {
    record.request.tail = TailPolicy::kCompact;
  } else {
    throw InvalidArgument("solution record: unknown tail policy '" + tail +
                          "'");
  }
  record.alpha = split_counts(required("alpha"), ',', "alpha");
  record.nf = split_counts(required("nf"), ',', "nf")[0];
  record.nc = split_counts(required("nc"), ',', "nc")[0];
  record.fold = split_counts(required("fold"), ',', "fold")[0];
  record.delta = split_counts(required("delta"), ',', "delta")[0];
  return record;
}

bool verify_record(const SolutionRecord& record) {
  const PartitionSolution solution = Partitioner::solve(record.request);
  return solution.transform.alpha() == record.alpha &&
         solution.search.num_banks == record.nf &&
         solution.num_banks() == record.nc &&
         solution.constraint.fold_factor == record.fold &&
         solution.delta_ii() == record.delta;
}

}  // namespace mempart
