// AVX2 instantiation of the bank-search kernels. This is one of the two
// translation units compiled with -mavx2 (see src/core/CMakeLists.txt and
// the sim twin soa_kernels_avx2.cpp), so four-lane instructions exist
// nowhere the runtime dispatcher cannot fence off: kernels_for() only
// hands out this table when cpuid reports AVX2.
#include "core/bank_kernels_impl.h"

#if !defined(__AVX2__)
#error "bank_kernels_avx2.cpp must be compiled with -mavx2"
#endif

namespace mempart::bank {

const Kernels& avx2_kernels() {
  static const Kernels kernels = make_kernels<simd::I64x4>(simd::Tier::kAvx2);
  return kernels;
}

}  // namespace mempart::bank
