#include "core/solve_cache.h"

#include <algorithm>

#include "common/env.h"
#include "common/errors.h"
#include "obs/metrics.h"

namespace mempart {
namespace {

Count round_up_pow2(Count n) {
  Count p = 1;
  while (p < n) p *= 2;
  return p;
}

}  // namespace

std::shared_ptr<SolveCache::Table> SolveCache::make_table(Count capacity,
                                                          Count shards) {
  MEMPART_REQUIRE(capacity >= 1, "SolveCache: capacity must be >= 1");
  MEMPART_REQUIRE(shards >= 0, "SolveCache: shards must be >= 0");
  if (shards == 0) {
    shards = env_count("MEMPART_CACHE_SHARDS", 8, 1, kMaxEnvCacheShards);
  }
  // More stripes than entries is pure overhead; cap, then round to a power
  // of two so shard selection is a mask of the key hash.
  shards = round_up_pow2(std::min(shards, capacity));
  auto table = std::make_shared<Table>();
  table->capacity = capacity;
  table->per_shard_capacity = std::max<Count>(1, capacity / shards);
  table->shard_mask = static_cast<size_t>(shards - 1);
  table->shards = std::vector<Shard>(static_cast<size_t>(shards));
  return table;
}

SolveCache::SolveCache(Count capacity, Count shards) {
  table_.store(make_table(capacity, shards), std::memory_order_release);
}

void SolveCache::reconfigure(Count capacity, Count shards) {
  // Build the replacement before the swap so a bad capacity/shard request
  // throws without disturbing the live table.
  std::shared_ptr<Table> fresh = make_table(capacity, shards);
  std::shared_ptr<Table> old =
      table_.exchange(std::move(fresh), std::memory_order_acq_rel);
  retire_counters(*old);
}

void SolveCache::retire_counters(Table& table) {
  for (Shard& shard : table.shards) {
    MutexLock lock(shard.mutex);
    retired_hits_.fetch_add(shard.hits, std::memory_order_relaxed);
    retired_misses_.fetch_add(shard.misses, std::memory_order_relaxed);
    retired_insertions_.fetch_add(shard.insertions, std::memory_order_relaxed);
    retired_evictions_.fetch_add(shard.evictions, std::memory_order_relaxed);
    shard.hits = shard.misses = shard.insertions = shard.evictions = 0;
  }
}

std::uint64_t SolveCache::hash_key(
    std::span<const std::int64_t> key) noexcept {
  // FNV-1a over the words; good enough dispersion for shard selection and
  // the per-shard hash table, and trivially allocation-free.
  std::uint64_t h = 14695981039346656037ULL;
  for (const std::int64_t word : key) {
    std::uint64_t v = static_cast<std::uint64_t>(word);
    for (int byte = 0; byte < 8; ++byte) {
      h ^= v & 0xffU;
      h *= 1099511628211ULL;
      v >>= 8;
    }
  }
  return h;
}

std::shared_ptr<const CachedSolve> SolveCache::find(
    std::span<const std::int64_t> key) {
  const std::uint64_t hash = hash_key(key);
  const std::shared_ptr<Table> table = this->table();
  Shard& shard = shard_for(*table, hash);
  const KeyRef ref{key.data(), key.size(), hash};
  MutexLock lock(shard.mutex);
  const auto it = shard.index.find(ref);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  // Refresh recency: splice the node to the front (iterators stay valid, so
  // the index needs no update).
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  return it->second->value;
}

bool SolveCache::contains(std::span<const std::int64_t> key) const {
  const std::uint64_t hash = hash_key(key);
  const std::shared_ptr<Table> table = this->table();
  const Shard& shard = shard_for(*table, hash);
  const KeyRef ref{key.data(), key.size(), hash};
  MutexLock lock(shard.mutex);
  return shard.index.find(ref) != shard.index.end();
}

void SolveCache::insert(std::span<const std::int64_t> key,
                        std::shared_ptr<const CachedSolve> value) {
  MEMPART_REQUIRE(value != nullptr, "SolveCache::insert: value must be set");
  const std::uint64_t hash = hash_key(key);
  const std::shared_ptr<Table> table = this->table();
  Shard& shard = shard_for(*table, hash);
  const KeyRef ref{key.data(), key.size(), hash};
  MutexLock lock(shard.mutex);
  const auto it = shard.index.find(ref);
  if (it != shard.index.end()) {
    // Two threads raced on the same miss; keep the first value (both are
    // deterministic solves of the same key) and refresh recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{{key.begin(), key.end()}, hash, std::move(value)});
  Entry& entry = shard.lru.front();
  shard.index.emplace(KeyRef{entry.key.data(), entry.key.size(), entry.hash},
                      shard.lru.begin());
  ++shard.insertions;
  evict_over_capacity(*table, shard);
}

void SolveCache::evict_over_capacity(const Table& table, Shard& shard) {
  while (static_cast<Count>(shard.lru.size()) > table.per_shard_capacity) {
    const Entry& victim = shard.lru.back();
    shard.index.erase(
        KeyRef{victim.key.data(), victim.key.size(), victim.hash});
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

SolveCache::Stats SolveCache::stats() const {
  Stats out;
  const std::shared_ptr<Table> table = this->table();
  out.capacity = table->capacity;
  out.shards = static_cast<Count>(table->shards.size());
  out.hits = retired_hits_.load(std::memory_order_relaxed);
  out.misses = retired_misses_.load(std::memory_order_relaxed);
  out.insertions = retired_insertions_.load(std::memory_order_relaxed);
  out.evictions = retired_evictions_.load(std::memory_order_relaxed);
  for (const Shard& shard : table->shards) {
    MutexLock lock(shard.mutex);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.insertions += shard.insertions;
    out.evictions += shard.evictions;
    out.entries += static_cast<Count>(shard.lru.size());
  }
  return out;
}

void SolveCache::clear() {
  const std::shared_ptr<Table> table = this->table();
  for (Shard& shard : table->shards) {
    MutexLock lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    shard.hits = shard.misses = shard.insertions = shard.evictions = 0;
  }
  retired_hits_.store(0, std::memory_order_relaxed);
  retired_misses_.store(0, std::memory_order_relaxed);
  retired_insertions_.store(0, std::memory_order_relaxed);
  retired_evictions_.store(0, std::memory_order_relaxed);
}

Count SolveCache::capacity() const { return table()->capacity; }

Count SolveCache::shard_count() const {
  return static_cast<Count>(table()->shards.size());
}

void SolveCache::publish_stats() const {
  const Stats s = stats();
  obs::gauge("cache.hits", static_cast<double>(s.hits));
  obs::gauge("cache.misses", static_cast<double>(s.misses));
  obs::gauge("cache.insertions", static_cast<double>(s.insertions));
  obs::gauge("cache.evictions", static_cast<double>(s.evictions));
  obs::gauge("cache.entries", static_cast<double>(s.entries));
  obs::gauge("cache.capacity", static_cast<double>(s.capacity));
  obs::gauge("cache.shards", static_cast<double>(s.shards));
}

SolveCache& SolveCache::global() {
  // The env variables only pick the STARTING size; reconfigure() (e.g.
  // `mempart serve --cache-capacity`) can resize the live cache later, so
  // this is no longer first-caller-wins for the lifetime of the process.
  static SolveCache cache(
      env_count("MEMPART_CACHE_CAPACITY", 4096, 1, kMaxEnvCacheCapacity),
      env_count("MEMPART_CACHE_SHARDS", 8, 1, kMaxEnvCacheShards));
  return cache;
}

}  // namespace mempart
