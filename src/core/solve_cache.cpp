#include "core/solve_cache.h"

#include <algorithm>
#include <cstdlib>

#include "common/errors.h"
#include "obs/metrics.h"

namespace mempart {
namespace {

Count env_count(const char* name, Count fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == nullptr || *end != '\0' || value < 1) return fallback;
  return static_cast<Count>(value);
}

Count round_up_pow2(Count n) {
  Count p = 1;
  while (p < n) p *= 2;
  return p;
}

}  // namespace

SolveCache::SolveCache(Count capacity, Count shards) {
  MEMPART_REQUIRE(capacity >= 1, "SolveCache: capacity must be >= 1");
  MEMPART_REQUIRE(shards >= 0, "SolveCache: shards must be >= 0");
  if (shards == 0) shards = env_count("MEMPART_CACHE_SHARDS", 8);
  // More stripes than entries is pure overhead; cap, then round to a power
  // of two so shard selection is a mask of the key hash.
  shards = round_up_pow2(std::min(shards, capacity));
  capacity_ = capacity;
  per_shard_capacity_ = std::max<Count>(1, capacity / shards);
  shard_mask_ = static_cast<size_t>(shards - 1);
  shards_ = std::vector<Shard>(static_cast<size_t>(shards));
}

std::uint64_t SolveCache::hash_key(
    std::span<const std::int64_t> key) noexcept {
  // FNV-1a over the words; good enough dispersion for shard selection and
  // the per-shard hash table, and trivially allocation-free.
  std::uint64_t h = 14695981039346656037ULL;
  for (const std::int64_t word : key) {
    std::uint64_t v = static_cast<std::uint64_t>(word);
    for (int byte = 0; byte < 8; ++byte) {
      h ^= v & 0xffU;
      h *= 1099511628211ULL;
      v >>= 8;
    }
  }
  return h;
}

std::shared_ptr<const CachedSolve> SolveCache::find(
    std::span<const std::int64_t> key) {
  const std::uint64_t hash = hash_key(key);
  Shard& shard = shard_for(hash);
  const KeyRef ref{key.data(), key.size(), hash};
  MutexLock lock(shard.mutex);
  const auto it = shard.index.find(ref);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  // Refresh recency: splice the node to the front (iterators stay valid, so
  // the index needs no update).
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  return it->second->value;
}

void SolveCache::insert(std::span<const std::int64_t> key,
                        std::shared_ptr<const CachedSolve> value) {
  MEMPART_REQUIRE(value != nullptr, "SolveCache::insert: value must be set");
  const std::uint64_t hash = hash_key(key);
  Shard& shard = shard_for(hash);
  const KeyRef ref{key.data(), key.size(), hash};
  MutexLock lock(shard.mutex);
  const auto it = shard.index.find(ref);
  if (it != shard.index.end()) {
    // Two threads raced on the same miss; keep the first value (both are
    // deterministic solves of the same key) and refresh recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{{key.begin(), key.end()}, hash, std::move(value)});
  Entry& entry = shard.lru.front();
  shard.index.emplace(KeyRef{entry.key.data(), entry.key.size(), entry.hash},
                      shard.lru.begin());
  ++shard.insertions;
  evict_over_capacity(shard);
}

void SolveCache::evict_over_capacity(Shard& shard) {
  while (static_cast<Count>(shard.lru.size()) > per_shard_capacity_) {
    const Entry& victim = shard.lru.back();
    shard.index.erase(
        KeyRef{victim.key.data(), victim.key.size(), victim.hash});
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

SolveCache::Stats SolveCache::stats() const {
  Stats out;
  out.capacity = capacity_;
  out.shards = static_cast<Count>(shards_.size());
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.insertions += shard.insertions;
    out.evictions += shard.evictions;
    out.entries += static_cast<Count>(shard.lru.size());
  }
  return out;
}

void SolveCache::clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    shard.hits = shard.misses = shard.insertions = shard.evictions = 0;
  }
}

void SolveCache::publish_stats() const {
  const Stats s = stats();
  obs::gauge("cache.hits", static_cast<double>(s.hits));
  obs::gauge("cache.misses", static_cast<double>(s.misses));
  obs::gauge("cache.insertions", static_cast<double>(s.insertions));
  obs::gauge("cache.evictions", static_cast<double>(s.evictions));
  obs::gauge("cache.entries", static_cast<double>(s.entries));
  obs::gauge("cache.capacity", static_cast<double>(s.capacity));
  obs::gauge("cache.shards", static_cast<double>(s.shards));
}

SolveCache& SolveCache::global() {
  static SolveCache cache(env_count("MEMPART_CACHE_CAPACITY", 4096),
                          env_count("MEMPART_CACHE_SHARDS", 8));
  return cache;
}

}  // namespace mempart
