// Closed-form storage-overhead analysis (paper §4.4.2).
//
// With the padded mapping, only the innermost dimension is padded from
// w_{n-1} up to ceil(w_{n-1}/N)*N, so
//
//     Delta W = (ceil(w_{n-1}/N)*N - w_{n-1}) * prod_{k<n-1} w_k
//
// bounded by (N-1) * prod_{k<n-1} w_k. The LTB baseline pads every dimension
// (see baseline/ltb_mapping.h), which is where the paper's "1/n of the
// overhead on average" comparison comes from. These helpers give the
// analytical values; BankMapping::storage_overhead_elements() must agree
// (pinned by tests).
#pragma once

#include "common/nd.h"
#include "common/types.h"

namespace mempart {

/// Exact element overhead of the padded mapping for `banks` banks.
[[nodiscard]] Count storage_overhead_elements(const NdShape& shape, Count banks);

/// Worst-case element overhead over all array sizes: (N-1)*prod_{k<n-1} w_k.
[[nodiscard]] Count max_storage_overhead_elements(const NdShape& shape,
                                                  Count banks);

/// Overhead as a fraction of the original array size W.
[[nodiscard]] double storage_overhead_ratio(const NdShape& shape, Count banks);

}  // namespace mempart
