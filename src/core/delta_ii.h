// Additional initiation interval delta_P(II) (Definition 4, §4.2, §4.3.2).
//
// For bank count N and transform alpha, the bank indices of the pattern's
// elements at position s are {(alpha . (s + Delta(i))) mod N}. Because
// alpha . s is common to all elements, the *multiset of collisions* is
// independent of s (§4.3.2), so delta_P can be computed once from the bare
// offsets: delta_P = (number of occurrences of the most frequent residue
// (alpha . Delta(i)) mod N) - 1. delta_P = 0 means all m accesses complete
// in a single cycle; delta_P = d means the worst bank must be read d+1 times.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "core/linear_transform.h"
#include "pattern/pattern.h"

namespace mempart {

/// delta_P for the given transform and bank count (>= 1). Charges the modulo
/// reductions and the histogram comparisons to the active OpScope.
[[nodiscard]] Count delta_ii(std::span<const Address> z, Count banks);

/// Convenience overload deriving z from pattern and transform.
[[nodiscard]] Count delta_ii(const Pattern& pattern,
                             const LinearTransform& transform, Count banks);

/// The residues (z(i) mod N) themselves, in pattern-offset order — the bank
/// index of each pattern element (used by reports and the simulator).
[[nodiscard]] std::vector<Count> bank_indices(std::span<const Address> z,
                                              Count banks);

}  // namespace mempart
