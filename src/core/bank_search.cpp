#include "core/bank_search.h"

#include <algorithm>
#include <cstdlib>

#include "common/errors.h"
#include "common/math_util.h"
#include "common/op_counter.h"

namespace mempart {

BankSearchResult minimize_banks(const std::vector<Address>& z,
                                bool collect_diagnostics) {
  MEMPART_REQUIRE(!z.empty(), "minimize_banks: z must be non-empty");
  const Count m = static_cast<Count>(z.size());

  BankSearchResult result;
  if (m == 1) {
    // A single access never conflicts; one bank suffices and Q is empty.
    result.num_banks = 1;
    return result;
  }

  // Lines 4-10: Q = { |z(i) - z(j)| }, M = max Q. One subtraction (and one
  // comparison-free abs) per pair.
  Count max_diff = 0;
  std::vector<Count> diffs;
  diffs.reserve(z.size() * (z.size() - 1) / 2);
  for (size_t i = 0; i + 1 < z.size(); ++i) {
    for (size_t j = i + 1; j < z.size(); ++j) {
      const Count d = std::abs(z[i] - z[j]);
      MEMPART_REQUIRE(d != 0, "minimize_banks: z values must be distinct");
      diffs.push_back(d);
      max_diff = std::max(max_diff, d);
    }
  }
  OpCounter::charge(OpKind::kAdd, m * (m - 1) / 2);

  // Lines 11-16: existence table E[1..M].
  std::vector<char> exists(static_cast<size_t>(max_diff) + 1, 0);
  for (Count d : diffs) exists[static_cast<size_t>(d)] = 1;

  // Lines 17-25: advance N_f past every value with a multiple in Q. Each
  // probe E[k*N_f] costs one multiplication (forming k*N_f) and one lookup.
  Count nf = m;
  Count k = 1;
  while (k * nf <= max_diff) {
    OpCounter::charge(OpKind::kMul);
    if (exists[static_cast<size_t>(k * nf)] != 0) {
      ++nf;
      ++result.rejected_candidates;
      k = 1;
    } else {
      ++k;
    }
    OpCounter::charge(OpKind::kCompare);
  }

  result.num_banks = nf;
  result.max_difference = max_diff;
  if (collect_diagnostics) {
    std::sort(diffs.begin(), diffs.end());
    diffs.erase(std::unique(diffs.begin(), diffs.end()), diffs.end());
    result.difference_set = std::move(diffs);
  }
  return result;
}

bool is_conflict_free_bank_count(const std::vector<Address>& z, Count banks) {
  MEMPART_REQUIRE(banks >= 1, "is_conflict_free_bank_count: banks must be >= 1");
  for (size_t i = 0; i + 1 < z.size(); ++i) {
    for (size_t j = i + 1; j < z.size(); ++j) {
      if (euclid_mod(z[i] - z[j], banks) == 0) return false;
    }
  }
  return true;
}

}  // namespace mempart
