#include "core/bank_search.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <optional>

#include "common/errors.h"
#include "common/math_util.h"
#include "common/op_counter.h"
#include "common/simd.h"
#include "core/bank_kernels.h"
#include "obs/flight_recorder.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mempart {
namespace {

/// First candidate >= `from` whose own difference bit is clear, capped at
/// max_value + 1. A set bit at nf means the difference nf itself was
/// observed, so k = 1 already rejects nf — the word-parallel scan skips a
/// run of such candidates with one countr_one per 64 of them, which is
/// the "smallest non-divisor lower bound" prefilter of the N-scan: dense
/// difference sets (contiguous taps) reject their first max_diff - m
/// candidates at one word-read per 64 instead of one probe each.
Count next_clear_candidate(const std::uint64_t* words, Count from,
                           Count max_value) {
  Count nf = from;
  while (nf <= max_value) {
    const std::uint64_t shifted =
        words[static_cast<std::size_t>(nf >> 6)] >>
        (static_cast<std::uint64_t>(nf) & 63);
    const int run = std::countr_one(shifted);
    if (run == 0) break;
    nf += run;  // a run ending at the word boundary resumes in the next word
  }
  return nf;
}

}  // namespace

BankSearchResult minimize_banks(std::span<const Address> z,
                                bool collect_diagnostics,
                                BankSearchScratch* scratch) {
  MEMPART_REQUIRE(!z.empty(), "minimize_banks: z must be non-empty");
  const Count m = static_cast<Count>(z.size());

  obs::Span span("bank_search.minimize");
  span.arg("m", m);
  obs::LatencyTimer timer("bank_search.minimize.ns");

  BankSearchResult result;
  if (m == 1) {
    // A single access never conflicts; one bank suffices and Q is empty.
    result.num_banks = 1;
    return result;
  }

  // Lines 4-10: Q = { |z(i) - z(j)| }, M = max Q. M equals max(z) - min(z),
  // and that one checked subtraction bounds every pairwise difference, so
  // the SoA pair scan below runs tier-dispatched vector kernels with no
  // per-pair overflow checks. The existence table E[1..M] (lines 11-16) is
  // a packed bitset — one cache line covers 512 differences — filled row
  // by row from the kernel's abs-diff staging buffer; the O(m^2) diffs
  // vector is only materialised when the caller wants the difference-set
  // diagnostics or the spread forces the fallback.
  //
  // Beyond kMaxTableDiff the dense bitset would still allocate hundreds of
  // megabytes for a handful of pairwise differences (a rank-1 pattern with
  // offsets {0, 2^40} has M = 2^40 but |Q| = 1), so large spreads fall
  // back to a sorted unique-difference list probed by divisibility.
  const auto [min_it, max_it] = std::minmax_element(z.begin(), z.end());
  const Count max_diff = abs_diff_checked(*max_it, *min_it);
  constexpr Count kMaxTableDiff = Count{1} << 24;
  const bool use_table = max_diff <= kMaxTableDiff;
  const bool keep_diffs = collect_diagnostics || !use_table;
  BankSearchScratch local;
  BankSearchScratch& buffers = scratch != nullptr ? *scratch : local;
  std::vector<std::uint64_t>& bits = buffers.exist_bits;
  std::vector<Count>& diffs = buffers.diffs;
  std::vector<std::int64_t>& row = buffers.row;
  diffs.clear();
  if (use_table) {
    bits.assign(static_cast<std::size_t>(max_diff >> 6) + 1, 0);
  }
  if (keep_diffs) {
    // The sorted-fallback list is deduplicated anyway and std::vector
    // growth is amortised, so don't reserve the full quadratic count up
    // front — a 4k-tap wide-spread pattern would reserve 64 MiB before
    // the first probe. Diagnostics callers asked for the whole set.
    constexpr Count kDiffReserveCap = 4096;
    const Count pairs = m * (m - 1) / 2;
    diffs.reserve(static_cast<std::size_t>(
        collect_diagnostics ? pairs : std::min(pairs, kDiffReserveCap)));
  }
  row.resize(static_cast<std::size_t>(m));

  const bank::Kernels& kern = bank::kernels_for(simd::active_tier());
  bool saw_duplicate = false;
  // The bit fill coalesces consecutive same-word updates in a register:
  // a read-modify-write per difference would serialise on the store
  // forwarding of the shared word exactly when the diffs are densest
  // (contiguous taps put 64 consecutive differences in one word), which
  // is the regime the bitset is supposed to win.
  std::size_t fill_word = 0;
  std::uint64_t fill_mask = 0;
  for (std::size_t i = 0; i + 1 < z.size(); ++i) {
    const Count count = m - static_cast<Count>(i) - 1;
    kern.abs_diff_row(z[i], z.data() + i + 1, count, row.data());
    if (use_table) {
      for (Count j = 0; j < count; ++j) {
        const auto d = static_cast<std::uint64_t>(row[static_cast<std::size_t>(j)]);
        const auto w = static_cast<std::size_t>(d >> 6);
        const std::uint64_t bit = std::uint64_t{1} << (d & 63);
        if (w == fill_word) {
          fill_mask |= bit;
        } else {
          bits[fill_word] |= fill_mask;
          fill_word = w;
          fill_mask = bit;
        }
      }
    }
    if (keep_diffs) {
      diffs.insert(diffs.end(), row.begin(),
                   row.begin() + static_cast<std::ptrdiff_t>(count));
    }
  }
  if (use_table) bits[fill_word] |= fill_mask;
  if (use_table) {
    saw_duplicate = (bits[0] & 1) != 0;  // difference 0 observed
  }
  if (!use_table) {
    std::sort(diffs.begin(), diffs.end());
    diffs.erase(std::unique(diffs.begin(), diffs.end()), diffs.end());
    saw_duplicate = diffs.front() == 0;
  } else if (collect_diagnostics) {
    std::sort(diffs.begin(), diffs.end());
    diffs.erase(std::unique(diffs.begin(), diffs.end()), diffs.end());
  }
  MEMPART_REQUIRE(!saw_duplicate, "minimize_banks: z values must be distinct");
  OpCounter::charge(OpKind::kAdd, m * (m - 1) / 2);

  // Lines 17-25: advance N_f past every value with a multiple in Q. The
  // bitset prefilter disposes of candidates whose k = 1 probe would hit
  // (their own value is in Q) 64 at a time; only candidates surviving it
  // run the k >= 2 multiple probe, one span per such candidate. Skipped
  // candidates are still charged and counted as rejected — one multiply
  // and one compare each, exactly the work the byte-table scan paid for
  // their single k = 1 probe — so rejected_candidates stays N_f - m and
  // the op model sees the same per-candidate floor. In the fallback,
  // "has a multiple in Q" is tested by the modular-inverse divisibility
  // kernel over the deduplicated difference list — same predicate,
  // O(|Q| / lanes) per candidate and no division.
  // Candidate-loop instrumentation is hoisted: the old scan opened a span
  // (two flight-recorder writes and a name-intern lookup) and recorded two
  // metrics per candidate, which on probe-heavy inputs cost more than the
  // probes themselves. The loop now prices flight per solve (the quiet
  // scope below, per the flight-recorder idiom), emits per-candidate spans
  // and histogram samples only when tracing / metrics are actually on, and
  // charges the op model in bulk per candidate.
  const bool traced = obs::tracing_enabled();
  const bool metrics = obs::metrics_enabled();
  obs::FlightQuietScope quiet;
  Count nf = m;
  const Count fallback_count = static_cast<Count>(diffs.size());
  for (;;) {
    if (use_table) {
      const Count clear = next_clear_candidate(bits.data(), nf, max_diff);
      if (clear != nf) {
        const Count skipped = clear - nf;
        OpCounter::charge(OpKind::kMul, skipped);
        OpCounter::charge(OpKind::kCompare, skipped);
        if (metrics) obs::count("bank_search.candidates.rejected", skipped);
        result.rejected_candidates += skipped;
        nf = clear;
      }
    }
    std::optional<obs::Span> candidate;
    if (traced) candidate.emplace("bank_search.candidate");
    Count probes = 0;
    bool rejected = false;
    if (use_table) {
      if (nf <= max_diff) {
        probes = 1;  // the prefilter's own-bit read was candidate nf's k = 1 probe
        rejected = kern.table_has_multiple(bits.data(), max_diff, nf, &probes);
      }
      OpCounter::charge(OpKind::kMul, probes);
      OpCounter::charge(OpKind::kCompare, probes);
    } else {
      rejected = kern.any_divisible(diffs.data(), fallback_count, nf, &probes);
      OpCounter::charge(OpKind::kCompare, probes);
    }
    if (traced) {
      candidate->arg("N", nf).arg("probes", probes).arg("rejected",
                                                        Count{rejected});
    }
    if (metrics) {
      static const std::vector<double> kProbeBounds = obs::pow2_bounds(10);
      obs::observe("bank_search.probes_per_candidate",
                   static_cast<double>(probes), kProbeBounds);
      obs::count(rejected ? "bank_search.candidates.rejected"
                          : "bank_search.candidates.accepted");
    }
    if (!rejected) break;
    ++nf;
    ++result.rejected_candidates;
  }

  result.num_banks = nf;
  result.max_difference = max_diff;
  span.arg("nf", nf).arg("rejected_candidates", result.rejected_candidates);
  if (collect_diagnostics) {
    if (use_table) {
      std::sort(diffs.begin(), diffs.end());
      diffs.erase(std::unique(diffs.begin(), diffs.end()), diffs.end());
    }
    // Copy (not move): diffs may live in caller-owned scratch.
    result.difference_set.assign(diffs.begin(), diffs.end());
  }
  return result;
}

bool is_conflict_free_bank_count(std::span<const Address> z, Count banks) {
  MEMPART_REQUIRE(banks >= 1, "is_conflict_free_bank_count: banks must be >= 1");
  for (size_t i = 0; i + 1 < z.size(); ++i) {
    for (size_t j = i + 1; j < z.size(); ++j) {
      // Reduce each value first so the difference cannot overflow even when
      // z spans nearly the whole 64-bit range.
      if (euclid_mod(euclid_mod(z[i], banks) - euclid_mod(z[j], banks),
                     banks) == 0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace mempart
