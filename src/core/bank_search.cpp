#include "core/bank_search.h"

#include <algorithm>
#include <cstdlib>

#include "common/errors.h"
#include "common/math_util.h"
#include "common/op_counter.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mempart {

BankSearchResult minimize_banks(std::span<const Address> z,
                                bool collect_diagnostics,
                                BankSearchScratch* scratch) {
  MEMPART_REQUIRE(!z.empty(), "minimize_banks: z must be non-empty");
  const Count m = static_cast<Count>(z.size());

  obs::Span span("bank_search.minimize");
  span.arg("m", m);

  BankSearchResult result;
  if (m == 1) {
    // A single access never conflicts; one bank suffices and Q is empty.
    result.num_banks = 1;
    return result;
  }

  // Lines 4-10: Q = { |z(i) - z(j)| }, M = max Q. One subtraction (and one
  // comparison-free abs) per pair. M equals max(z) - min(z), so the
  // existence table E[1..M] (lines 11-16) can be sized with one O(m) scan
  // and filled directly in the pair pass — the O(m^2) diffs vector is only
  // materialised when the caller wants the difference-set diagnostics.
  //
  // Beyond kMaxTableDiff the dense table would allocate gigabytes for a
  // handful of pairwise differences (a rank-1 pattern with offsets {0, 2^40}
  // has M = 2^40 but |Q| = 1), so large spreads fall back to a sorted
  // unique-difference list probed by divisibility instead.
  const auto [min_it, max_it] = std::minmax_element(z.begin(), z.end());
  const Count max_diff = abs_diff_checked(*max_it, *min_it);
  constexpr Count kMaxTableDiff = Count{1} << 24;
  const bool use_table = max_diff <= kMaxTableDiff;
  BankSearchScratch local;
  BankSearchScratch& buffers = scratch != nullptr ? *scratch : local;
  std::vector<char>& exists = buffers.exists;
  std::vector<Count>& diffs = buffers.diffs;
  diffs.clear();
  if (use_table) exists.assign(static_cast<size_t>(max_diff) + 1, 0);
  if (collect_diagnostics || !use_table) {
    diffs.reserve(z.size() * (z.size() - 1) / 2);
  }
  for (size_t i = 0; i + 1 < z.size(); ++i) {
    for (size_t j = i + 1; j < z.size(); ++j) {
      const Count d = abs_diff_checked(z[i], z[j]);
      MEMPART_REQUIRE(d != 0, "minimize_banks: z values must be distinct");
      if (use_table) exists[static_cast<size_t>(d)] = 1;
      if (collect_diagnostics || !use_table) diffs.push_back(d);
    }
  }
  if (!use_table) {
    std::sort(diffs.begin(), diffs.end());
    diffs.erase(std::unique(diffs.begin(), diffs.end()), diffs.end());
  }
  OpCounter::charge(OpKind::kAdd, m * (m - 1) / 2);

  // Lines 17-25: advance N_f past every value with a multiple in Q. Each
  // probe E[k*N_f] costs one multiplication (forming k*N_f) and one lookup.
  // One iteration of the outer loop tests one candidate N_f end to end, so
  // a span per iteration shows the O(m^2)-ish scan candidate by candidate.
  // In the fallback, "has a multiple in Q" is tested as d % nf == 0 over the
  // deduplicated difference list — same predicate, O(|Q|) per candidate.
  Count nf = m;
  for (;;) {
    obs::Span candidate("bank_search.candidate");
    Count probes = 0;
    bool rejected = false;
    if (use_table) {
      for (Count k = 1; k * nf <= max_diff; ++k) {
        OpCounter::charge(OpKind::kMul);
        ++probes;
        rejected = exists[static_cast<size_t>(k * nf)] != 0;
        OpCounter::charge(OpKind::kCompare);
        if (rejected) break;
      }
    } else {
      for (const Count d : diffs) {
        ++probes;
        // mempart-lint: allow(raw-arith) d and nf are both > 0 by loop invariant; this is the hot fallback probe loop
        rejected = (d % nf) == 0;
        OpCounter::charge(OpKind::kCompare);
        if (rejected) break;
      }
    }
    candidate.arg("N", nf).arg("probes", probes).arg("rejected", Count{rejected});
    static const std::vector<double> kProbeBounds = obs::pow2_bounds(10);
    obs::observe("bank_search.probes_per_candidate",
                 static_cast<double>(probes), kProbeBounds);
    obs::count(rejected ? "bank_search.candidates.rejected"
                        : "bank_search.candidates.accepted");
    if (!rejected) break;
    ++nf;
    ++result.rejected_candidates;
  }

  result.num_banks = nf;
  result.max_difference = max_diff;
  span.arg("nf", nf).arg("rejected_candidates", result.rejected_candidates);
  if (collect_diagnostics) {
    std::sort(diffs.begin(), diffs.end());
    diffs.erase(std::unique(diffs.begin(), diffs.end()), diffs.end());
    // Copy (not move): diffs may live in caller-owned scratch.
    result.difference_set.assign(diffs.begin(), diffs.end());
  }
  return result;
}

bool is_conflict_free_bank_count(std::span<const Address> z, Count banks) {
  MEMPART_REQUIRE(banks >= 1, "is_conflict_free_bank_count: banks must be >= 1");
  for (size_t i = 0; i + 1 < z.size(); ++i) {
    for (size_t j = i + 1; j < z.size(); ++j) {
      // Reduce each value first so the difference cannot overflow even when
      // z spans nearly the whole 64-bit range.
      if (euclid_mod(euclid_mod(z[i], banks) - euclid_mod(z[j], banks),
                     banks) == 0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace mempart
