#include "core/bank_search.h"

#include <algorithm>
#include <cstdlib>

#include "common/errors.h"
#include "common/math_util.h"
#include "common/op_counter.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mempart {

BankSearchResult minimize_banks(const std::vector<Address>& z,
                                bool collect_diagnostics) {
  MEMPART_REQUIRE(!z.empty(), "minimize_banks: z must be non-empty");
  const Count m = static_cast<Count>(z.size());

  obs::Span span("bank_search.minimize");
  span.arg("m", m);

  BankSearchResult result;
  if (m == 1) {
    // A single access never conflicts; one bank suffices and Q is empty.
    result.num_banks = 1;
    return result;
  }

  // Lines 4-10: Q = { |z(i) - z(j)| }, M = max Q. One subtraction (and one
  // comparison-free abs) per pair. M equals max(z) - min(z), so the
  // existence table E[1..M] (lines 11-16) can be sized with one O(m) scan
  // and filled directly in the pair pass — the O(m^2) diffs vector is only
  // materialised when the caller wants the difference-set diagnostics.
  const auto [min_it, max_it] = std::minmax_element(z.begin(), z.end());
  const Count max_diff = *max_it - *min_it;
  std::vector<char> exists(static_cast<size_t>(max_diff) + 1, 0);
  std::vector<Count> diffs;
  if (collect_diagnostics) diffs.reserve(z.size() * (z.size() - 1) / 2);
  for (size_t i = 0; i + 1 < z.size(); ++i) {
    for (size_t j = i + 1; j < z.size(); ++j) {
      const Count d = std::abs(z[i] - z[j]);
      MEMPART_REQUIRE(d != 0, "minimize_banks: z values must be distinct");
      exists[static_cast<size_t>(d)] = 1;
      if (collect_diagnostics) diffs.push_back(d);
    }
  }
  OpCounter::charge(OpKind::kAdd, m * (m - 1) / 2);

  // Lines 17-25: advance N_f past every value with a multiple in Q. Each
  // probe E[k*N_f] costs one multiplication (forming k*N_f) and one lookup.
  // One iteration of the outer loop tests one candidate N_f end to end, so
  // a span per iteration shows the O(m^2)-ish scan candidate by candidate.
  Count nf = m;
  for (;;) {
    obs::Span candidate("bank_search.candidate");
    Count probes = 0;
    bool rejected = false;
    for (Count k = 1; k * nf <= max_diff; ++k) {
      OpCounter::charge(OpKind::kMul);
      ++probes;
      rejected = exists[static_cast<size_t>(k * nf)] != 0;
      OpCounter::charge(OpKind::kCompare);
      if (rejected) break;
    }
    candidate.arg("N", nf).arg("probes", probes).arg("rejected", Count{rejected});
    static const std::vector<double> kProbeBounds = obs::pow2_bounds(10);
    obs::observe("bank_search.probes_per_candidate",
                 static_cast<double>(probes), kProbeBounds);
    obs::count(rejected ? "bank_search.candidates.rejected"
                        : "bank_search.candidates.accepted");
    if (!rejected) break;
    ++nf;
    ++result.rejected_candidates;
  }

  result.num_banks = nf;
  result.max_difference = max_diff;
  span.arg("nf", nf).arg("rejected_candidates", result.rejected_candidates);
  if (collect_diagnostics) {
    std::sort(diffs.begin(), diffs.end());
    diffs.erase(std::unique(diffs.begin(), diffs.end()), diffs.end());
    result.difference_set = std::move(diffs);
  }
  return result;
}

bool is_conflict_free_bank_count(const std::vector<Address>& z, Count banks) {
  MEMPART_REQUIRE(banks >= 1, "is_conflict_free_bank_count: banks must be >= 1");
  for (size_t i = 0; i + 1 < z.size(); ++i) {
    for (size_t j = i + 1; j < z.size(); ++j) {
      if (euclid_mod(z[i] - z[j], banks) == 0) return false;
    }
  }
  return true;
}

}  // namespace mempart
