// Persistence of partitioning decisions.
//
// An HLS flow solves once at compile time and consumes the decision in
// later stages (RTL generation, reporting, regression baselines). This
// module serialises a (request, solution) pair to a small line-based text
// format and reads it back. The reader returns the original request plus
// the recorded solution facts; re-solving the request must reproduce those
// facts exactly (the solver is deterministic), which doubles as an
// integrity check — verify_record() performs it.
//
// Format (one "key value" pair per line, '#' comments ignored):
//
//   mempart-solution v1
//   pattern.name LoG
//   pattern.offsets (0,2);(1,1);(1,2);...
//   shape 640,480            # optional
//   max_banks 10             # optional, 0 = unconstrained
//   bandwidth 1
//   strategy fast            # fast | same-size
//   tail padded              # padded | compact
//   alpha 5,1
//   nf 13
//   nc 7
//   fold 2
//   delta 1
#pragma once

#include <string>

#include "core/partitioner.h"

namespace mempart {

/// A deserialised record: the request plus the outcome it produced.
struct SolutionRecord {
  PartitionRequest request;
  std::vector<Count> alpha;
  Count nf = 0;
  Count nc = 0;
  Count fold = 1;
  Count delta = 0;
};

/// Serialises `request` and the facts of `solution`.
[[nodiscard]] std::string write_solution_record(
    const PartitionRequest& request, const PartitionSolution& solution);

/// Parses a record. Throws InvalidArgument with the offending line on any
/// syntax or consistency error.
[[nodiscard]] SolutionRecord read_solution_record(const std::string& text);

/// Re-solves the record's request and checks the recorded facts still hold.
/// Returns true when everything matches.
[[nodiscard]] bool verify_record(const SolutionRecord& record);

}  // namespace mempart
