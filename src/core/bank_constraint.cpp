#include "core/bank_constraint.h"

#include <algorithm>

#include "common/errors.h"
#include "common/math_util.h"
#include "common/op_counter.h"
#include "core/delta_ii.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mempart {

ConstrainedBanks constrain_fast(Count nf, Count nmax) {
  MEMPART_REQUIRE(nf >= 1, "constrain_fast: nf must be >= 1");
  MEMPART_REQUIRE(nmax >= 1, "constrain_fast: nmax must be >= 1");
  ConstrainedBanks out;
  out.strategy = ConstraintStrategy::kFastFold;
  if (nf <= nmax) {
    out.num_banks = nf;
    out.fold_factor = 1;
    out.delta_ii = 0;
    return out;
  }
  // F = ceil(Nf / Nmax); Nc = ceil(Nf / F). Two divisions.
  out.fold_factor = ceil_div(nf, nmax);
  out.num_banks = ceil_div(nf, out.fold_factor);
  OpCounter::charge(OpKind::kDiv, 2);
  // Each folded bank merges at most F original conflict-free banks, so at
  // most F of the m accesses collide per folded bank.
  out.delta_ii = out.fold_factor - 1;
  return out;
}

ConstrainedBanks constrain_same_size(std::span<const Address> z, Count nmax) {
  MEMPART_REQUIRE(nmax >= 1, "constrain_same_size: nmax must be >= 1");
  ConstrainedBanks out;
  out.strategy = ConstraintStrategy::kSameSize;
  out.fold_factor = 1;
  out.sweep = delta_sweep(z, nmax);
  const auto best = std::min_element(out.sweep.begin(), out.sweep.end());
  out.num_banks = static_cast<Count>(best - out.sweep.begin()) + 1;
  out.delta_ii = *best;
  return out;
}

std::vector<Count> delta_sweep(std::span<const Address> z, Count nmax) {
  MEMPART_REQUIRE(nmax >= 1, "delta_sweep: nmax must be >= 1");
  obs::Span span("bank_constraint.delta_sweep");
  span.arg("nmax", nmax);
  std::vector<Count> sweep;
  sweep.reserve(static_cast<size_t>(nmax));
  static const std::vector<double> kDeltaBounds = obs::pow2_bounds(8);
  for (Count n = 1; n <= nmax; ++n) {
    const Count delta = delta_ii(z, n);
    obs::observe("constrain.delta_per_candidate", static_cast<double>(delta),
                 kDeltaBounds);
    sweep.push_back(delta);
  }
  return sweep;
}

}  // namespace mempart
