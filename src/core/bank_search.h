// Algorithm 1 of the paper (§4.3.1): minimise the unconstrained bank count.
//
// Given the transformed values z(i) = alpha . Delta(i) (pairwise distinct by
// Theorem 1), a bank count N yields a conflict-free mapping
// B(x) = (alpha . x) mod N  iff no pairwise difference |z(i) - z(j)| is a
// multiple of N. Algorithm 1 therefore:
//
//   1. collects the difference multiset Q into an existence table
//      E[1..M], M = max z - min z;
//   2. starting at N_f = m, advances N_f past every value for which some
//      multiple k*N_f (k*N_f <= M) appears in Q.
//
// Total cost O(m^2 + sum_k ceil(M / (m+k))) ~= O(m^2), versus the LTB
// baseline's O(C * N^n * m^2) exhaustive search.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"

namespace mempart {

/// Output of Algorithm 1.
struct BankSearchResult {
  /// Minimal N_f >= m with no multiple of N_f in the difference set.
  Count num_banks = 0;

  /// Sorted distinct pairwise differences (the set Q; diagnostics/case study).
  std::vector<Count> difference_set;

  /// M = max Q: the spread of the transformed values.
  Count max_difference = 0;

  /// How many candidate values of N_f were rejected before success (the
  /// paper's constant C in the complexity analysis).
  Count rejected_candidates = 0;
};

/// Reusable buffers for minimize_banks: the packed existence bitset, the
/// difference list, and the per-row abs-diff staging buffer of the SoA
/// pair scan. Hot callers (the Partitioner solve loop) own one and pass
/// it in, so repeated solves stop paying the table allocation — the
/// bitset is re-zeroed in place instead (and being 64 differences per
/// word, the zeroing touches 8x less memory than the old vector<char>
/// table did).
struct BankSearchScratch {
  std::vector<std::uint64_t> exist_bits;
  std::vector<Count> diffs;
  std::vector<std::int64_t> row;
};

/// Runs Algorithm 1 on transformed values `z` (must be pairwise distinct,
/// size >= 1). Charges its arithmetic to the active OpScope. When
/// `collect_diagnostics` is false the returned difference_set stays empty
/// (skipping its sort/dedup), which matters on the microsecond-scale solve
/// path; num_banks, max_difference and rejected_candidates are always set.
/// `scratch`, when given, supplies the working buffers.
[[nodiscard]] BankSearchResult minimize_banks(std::span<const Address> z,
                                              bool collect_diagnostics = true,
                                              BankSearchScratch* scratch = nullptr);

[[nodiscard]] inline BankSearchResult minimize_banks(
    const std::vector<Address>& z, bool collect_diagnostics = true) {
  return minimize_banks(std::span<const Address>(z), collect_diagnostics);
}

/// Convenience predicate: true iff no multiple of `banks` occurs among the
/// pairwise differences of `z`, i.e. `banks` yields a conflict-free mapping.
[[nodiscard]] bool is_conflict_free_bank_count(std::span<const Address> z,
                                               Count banks);

}  // namespace mempart
