#include "core/verify.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "common/errors.h"

namespace mempart {
namespace {

/// The box of position offsets s at which `pattern` fits inside `domain`:
/// s_d in [-min_d, w_d - 1 - max_d]. Returns false when empty.
bool valid_position_box(const Pattern& pattern, const NdShape& domain,
                        NdIndex& base, std::vector<Count>& extents) {
  MEMPART_REQUIRE(pattern.rank() == domain.rank(),
                  "valid_position_box: rank mismatch");
  base.assign(static_cast<size_t>(pattern.rank()), 0);
  extents.assign(static_cast<size_t>(pattern.rank()), 0);
  for (int d = 0; d < pattern.rank(); ++d) {
    const Coord lo = -pattern.min_coord(d);
    const Coord hi = domain.extent(d) - 1 - pattern.max_coord(d);
    if (hi < lo) return false;
    base[static_cast<size_t>(d)] = lo;
    extents[static_cast<size_t>(d)] = hi - lo + 1;
  }
  return true;
}

Count mode_count(const Pattern& pattern, const NdIndex& s,
                 const std::function<Count(const NdIndex&)>& bank_of) {
  std::vector<Count> banks;
  banks.reserve(static_cast<size_t>(pattern.size()));
  for (const NdIndex& x : pattern.at(s)) banks.push_back(bank_of(x));
  std::sort(banks.begin(), banks.end());
  Count best = 1;
  Count run = 1;
  for (size_t i = 1; i < banks.size(); ++i) {
    run = (banks[i] == banks[i - 1]) ? run + 1 : 1;
    best = std::max(best, run);
  }
  return best;
}

}  // namespace

VerifyResult verify_unique_addresses(const BankMapping& mapping) {
  const NdShape& shape = mapping.array_shape();
  // Key = bank * (max_offset_bound) + offset would risk collision games;
  // use a set of exact pairs packed into 128 bits via two 64-bit halves.
  std::unordered_set<std::string> seen;
  seen.reserve(static_cast<size_t>(shape.volume()));
  VerifyResult result;
  shape.for_each([&](const NdIndex& x) {
    if (!result.ok) return;
    const Count bank = mapping.bank_of(x);
    const Address offset = mapping.offset_of(x);
    if (bank < 0 || bank >= mapping.num_banks()) {
      result.ok = false;
      std::ostringstream os;
      os << "bank index " << bank << " out of range at " << to_string(x);
      result.message = os.str();
      return;
    }
    if (offset < 0 || offset >= mapping.bank_capacity(bank)) {
      result.ok = false;
      std::ostringstream os;
      os << "offset " << offset << " exceeds capacity "
         << mapping.bank_capacity(bank) << " of bank " << bank << " at "
         << to_string(x);
      result.message = os.str();
      return;
    }
    std::string key = std::to_string(bank) + ':' + std::to_string(offset);
    if (!seen.insert(std::move(key)).second) {
      result.ok = false;
      std::ostringstream os;
      os << "duplicate address (bank " << bank << ", offset " << offset
         << ") at " << to_string(x);
      result.message = os.str();
    }
  });
  if (result.ok) result.message = "all addresses unique";
  return result;
}

Count measure_delta_ii(const Pattern& pattern, const NdShape& domain,
                       const std::function<Count(const NdIndex&)>& bank_of) {
  NdIndex base;
  std::vector<Count> extents;
  if (!valid_position_box(pattern, domain, base, extents)) return 0;
  Count worst = 1;
  NdShape(extents).for_each([&](const NdIndex& rel) {
    worst = std::max(worst, mode_count(pattern, add(base, rel), bank_of));
  });
  return worst - 1;
}

Count measure_delta_ii_sampled(
    const Pattern& pattern, const NdShape& domain,
    const std::function<Count(const NdIndex&)>& bank_of, Count samples) {
  MEMPART_REQUIRE(samples >= 1, "measure_delta_ii_sampled: samples must be >= 1");
  NdIndex base;
  std::vector<Count> extents;
  if (!valid_position_box(pattern, domain, base, extents)) return 0;
  const NdShape box(extents);
  const Count total = box.volume();
  const Count stride = std::max<Count>(1, total / samples);
  Count worst = 1;
  for (Address flat = 0; flat < total; flat += stride) {
    const NdIndex s = add(base, box.unflatten(flat));
    worst = std::max(worst, mode_count(pattern, s, bank_of));
  }
  return worst - 1;
}

}  // namespace mempart
