#include "hw/resolutions.h"

namespace mempart::hw {

NdShape Resolution::shape2d() const { return NdShape({width, height}); }

NdShape Resolution::shape3d(Count depth) const {
  return NdShape({width, height, depth});
}

const std::vector<Resolution>& table1_resolutions() {
  static const std::vector<Resolution> kResolutions = {
      {"SD", 640, 480},      {"HD", 1280, 720},    {"FullHD", 1920, 1080},
      {"WQXGA", 2560, 1600}, {"4K", 3840, 2160},
  };
  return kResolutions;
}

}  // namespace mempart::hw
