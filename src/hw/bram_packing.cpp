#include "hw/bram_packing.h"

#include <sstream>

#include "common/errors.h"
#include "common/math_util.h"

namespace mempart::hw {

const std::vector<BramAspect>& m9k_aspects() {
  static const std::vector<BramAspect> kAspects = {
      {8192, 1}, {4096, 2}, {2048, 4}, {1024, 9}, {512, 18}, {256, 36},
  };
  return kAspects;
}

std::string PackingResult::to_string() const {
  std::ostringstream os;
  os << blocks << " blocks as " << depth_blocks << 'x' << width_blocks
     << " grid of " << aspect.depth << 'x' << aspect.width;
  return os.str();
}

PackingResult pack_memory(Count depth, Count width_bits,
                          const std::vector<BramAspect>& aspects) {
  MEMPART_REQUIRE(depth > 0 && width_bits > 0,
                  "pack_memory: depth and width must be positive");
  MEMPART_REQUIRE(!aspects.empty(), "pack_memory: empty aspect set");
  PackingResult best;
  for (const BramAspect& aspect : aspects) {
    MEMPART_REQUIRE(aspect.depth > 0 && aspect.width > 0,
                    "pack_memory: invalid aspect");
    const Count down = ceil_div(depth, aspect.depth);
    const Count across = ceil_div(width_bits, aspect.width);
    const Count blocks = checked_mul(down, across);
    if (best.blocks == 0 || blocks < best.blocks) {
      best = {blocks, aspect, down, across};
    }
  }
  return best;
}

Count pack_banks(const std::vector<Count>& bank_depths, Count width_bits,
                 const std::vector<BramAspect>& aspects) {
  Count total = 0;
  for (Count depth : bank_depths) {
    if (depth == 0) continue;  // legitimately empty bank occupies no block
    total = checked_add(total, pack_memory(depth, width_bits, aspects).blocks);
  }
  return total;
}

}  // namespace mempart::hw
