// The evaluation's array sizes (§5.2): common image resolutions, plus the
// 400-sample depth used for the 3-D Sobel benchmark.
//
// The paper declares arrays as X[1:640][1:480] for a 640x480 image, so the
// array shape is (width, height) with HEIGHT innermost — the innermost
// extent is what the proposed mapping pads to a multiple of N, which is why
// e.g. the LoG/SD overhead is (ceil(480/13)*13 - 480) * 640 = 640 elements.
// For Sobel 3-D the shape is (width, height, depth) with depth = 400
// innermost, matching the paper's per-resolution Sobel overheads.
#pragma once

#include <string>
#include <vector>

#include "common/nd.h"
#include "common/types.h"

namespace mempart::hw {

/// One evaluation array size.
struct Resolution {
  std::string name;   ///< "SD", "HD", ...
  Count width = 0;
  Count height = 0;

  /// 2-D array shape (width, height), height innermost.
  [[nodiscard]] NdShape shape2d() const;

  /// 3-D array shape (width, height, depth), depth innermost.
  [[nodiscard]] NdShape shape3d(Count depth = kSobelDepth) const;

  /// Depth of the Sobel 3-D benchmark (§5.2: "the 3rd-dimension has 400
  /// samples for all memory sizes").
  static constexpr Count kSobelDepth = 400;
};

/// The five Table 1 resolutions in paper order:
/// SD(640x480), HD(1280x720), FullHD(1920x1080), WQXGA(2560x1600),
/// 4K(3840x2160).
[[nodiscard]] const std::vector<Resolution>& table1_resolutions();

}  // namespace mempart::hw
