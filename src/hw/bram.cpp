#include "hw/bram.h"

#include <vector>

#include "common/errors.h"
#include "common/math_util.h"

namespace mempart::hw {

Count blocks_for_elements(Count elements, const BramSpec& spec) {
  MEMPART_REQUIRE(elements >= 0, "blocks_for_elements: negative element count");
  MEMPART_REQUIRE(spec.block_bits > 0 && spec.element_bits > 0,
                  "blocks_for_elements: spec fields must be positive");
  if (elements == 0) return 0;
  return ceil_div(checked_mul(elements, spec.element_bits), spec.block_bits);
}

Count overhead_blocks(Count overhead_elements, const BramSpec& spec) {
  return blocks_for_elements(overhead_elements, spec);
}

Count blocks_per_bank_sum(const std::vector<Count>& bank_elements,
                          const BramSpec& spec) {
  Count total = 0;
  for (Count e : bank_elements) {
    total = checked_add(total, blocks_for_elements(e, spec));
  }
  return total;
}

}  // namespace mempart::hw
