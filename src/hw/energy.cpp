#include "hw/energy.h"

#include <cmath>

#include "common/errors.h"

namespace mempart::hw {

EnergyEstimate estimate_energy(const std::vector<Count>& bank_capacities,
                               Count accesses, Count cycles,
                               const EnergyParams& params) {
  MEMPART_REQUIRE(!bank_capacities.empty(),
                  "estimate_energy: need at least one bank");
  MEMPART_REQUIRE(accesses >= 0 && cycles >= 0,
                  "estimate_energy: negative counts");
  const auto banks = static_cast<double>(bank_capacities.size());

  // Mean per-access energy over the banks (uniform spread).
  double mean_access = 0.0;
  double total_words = 0.0;
  for (Count capacity : bank_capacities) {
    MEMPART_REQUIRE(capacity >= 0, "estimate_energy: negative capacity");
    mean_access += params.access_base +
                   params.access_per_sqrt_word *
                       std::sqrt(static_cast<double>(capacity));
    total_words += static_cast<double>(capacity);
  }
  mean_access /= banks;

  EnergyEstimate estimate;
  estimate.dynamic = mean_access * static_cast<double>(accesses);
  estimate.stat = (params.leakage_per_word * total_words +
                   params.periphery_per_bank * banks) *
                  static_cast<double>(cycles);
  return estimate;
}

}  // namespace mempart::hw
