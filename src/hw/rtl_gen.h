// Synthesizable address-generator emission.
//
// The deliverable an HLS flow actually consumes: given a solved BankMapping,
// emit a Verilog-2001 module computing
//
//     v      = alpha . x                     (constant multiplies + adds)
//     bank   = (v % MODULUS) [% NUM_BANKS]   (second modulo when folded)
//     offset = leading_flat * K' + (v % (K'*MODULUS)) / MODULUS
//              [+ fold_segment * raw_bank_capacity]
//
// Emission goes through a small IR (AddrGenIr) with a software golden model,
// so tests can prove bit-equivalence between the IR the Verilog is printed
// from and the BankMapping it was derived from — the practical substitute
// for simulating the Verilog in this environment. A self-checking testbench
// generator is included for users with a real simulator.
//
// Only TailPolicy::kPadded mappings are supported: the compact tail needs a
// per-element rank lookup (a ROM in hardware), which the paper itself
// rejects as "high complexity".
#pragma once

#include <string>
#include <vector>

#include "common/nd.h"
#include "common/types.h"
#include "core/bank_mapping.h"

namespace mempart::hw {

/// Flattened description of one padded bank mapping.
struct AddrGenIr {
  std::vector<Count> alpha;     ///< transform coefficients
  std::vector<Count> extents;   ///< array shape (for widths and leading flat)
  Count num_banks = 0;          ///< N_c
  Count modulus = 0;            ///< N_f (== num_banks when unfolded)
  Count padded_slices = 0;      ///< K'

  [[nodiscard]] int rank() const { return static_cast<int>(alpha.size()); }
  [[nodiscard]] bool folded() const { return modulus != num_banks; }
};

/// Extracts the IR. Throws InvalidArgument for compact-tail mappings.
[[nodiscard]] AddrGenIr build_addr_gen_ir(const BankMapping& mapping);

/// Software golden model of the emitted hardware (must equal the mapping).
[[nodiscard]] Count ir_bank(const AddrGenIr& ir, const NdIndex& x);
[[nodiscard]] Address ir_offset(const AddrGenIr& ir, const NdIndex& x);

/// Verilog emission controls.
struct RtlOptions {
  std::string module_name = "mempart_addr_gen";
  int coord_width = 0;   ///< bits per coordinate input; 0 = derive from extents
};

/// Emits the synthesizable module.
[[nodiscard]] std::string emit_verilog(const AddrGenIr& ir,
                                       const RtlOptions& options = {});

/// Emits a self-checking testbench exercising `vectors` sample coordinates
/// with expectations from the golden model.
[[nodiscard]] std::string emit_verilog_testbench(
    const AddrGenIr& ir, const std::vector<NdIndex>& vectors,
    const RtlOptions& options = {});

}  // namespace mempart::hw
