// FPGA block-RAM cost model (Cyclone IV "M9K" as used on the DE2-115).
//
// The paper reports storage overhead "measured in the number of 9kb memory
// blocks". Fitting every overhead cell of Table 1 (DESIGN.md §2) recovers
// the exact accounting the authors used:
//
//     blocks(e) = ceil(e * 16 / 9000)
//
// i.e. 16-bit data elements and 9000-bit blocks ("9kb" read as 9 kilobits
// decimal, not 9216). Both constants are configurable via BramSpec; the
// defaults reproduce Table 1 bit-for-bit on the 2-D rows.
#pragma once

#include <vector>

#include "common/types.h"

namespace mempart::hw {

/// Block-RAM geometry and element width.
struct BramSpec {
  Count block_bits = 9000;   ///< usable bits per block
  Count element_bits = 16;   ///< bits per data element

  friend bool operator==(const BramSpec&, const BramSpec&) = default;
};

/// Blocks needed to store `elements` data elements (ceiling).
[[nodiscard]] Count blocks_for_elements(Count elements,
                                        const BramSpec& spec = {});

/// The paper's overhead metric: blocks attributable to `overhead_elements`
/// wasted elements. Identical to blocks_for_elements; named for intent.
[[nodiscard]] Count overhead_blocks(Count overhead_elements,
                                    const BramSpec& spec = {});

/// Blocks when every bank is allocated whole blocks: sum over banks of
/// ceil(bank_elements * element_bits / block_bits). A stricter accounting
/// than the paper's aggregate metric, exposed for the ablation bench.
[[nodiscard]] Count blocks_per_bank_sum(const std::vector<Count>& bank_elements,
                                        const BramSpec& spec = {});

}  // namespace mempart::hw
