// Address-generator hardware cost model.
//
// §1/§3 of the paper motivate the bank-count cap N_max with the hardware
// cost of many banks: "area, routing and control logic". This module puts
// numbers on that trade-off so the ablation benches can sweep it. The model
// counts the arithmetic units a straightforward RTL realisation of the
// mapping needs per parallel access port, then folds in per-bank muxing:
//
//   bank index  B(x) = (alpha . x) mod N  : constant multipliers + adder
//                                           tree + one modulo unit
//   intra-bank  F(x)                      : one modulo + one divider
//                                           (power-of-two N degrades both to
//                                           wiring/shifts, modelled as free)
//   routing                               : m x N crossbar, LUT cost ~ m*N*w
//
// The LUT weights are calibration constants of this reproduction, not paper
// values; they are documented in EXPERIMENTS.md and only relative
// comparisons are meaningful.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "core/linear_transform.h"

namespace mempart::hw {

/// Unit counts plus a scalar LUT estimate for one mapping realisation.
struct AddressGenCost {
  Count constant_multipliers = 0;  ///< alpha_j * x_j (alpha_j != 0, != 1)
  Count adders = 0;                ///< dot-product reduction tree
  Count modulo_units = 0;          ///< % N / % K'N reductions
  Count divider_units = 0;         ///< / N in F(x)
  Count crossbar_ports = 0;        ///< m*N switch points
  double lut_estimate = 0.0;       ///< weighted aggregate

  [[nodiscard]] std::string to_string() const;
};

/// Per-unit LUT weights (16-bit datapath defaults).
struct AddressGenWeights {
  double lut_per_const_mul = 18.0;
  double lut_per_adder = 16.0;
  double lut_per_modulo = 48.0;      ///< non-power-of-two modulo
  double lut_per_divider = 96.0;     ///< non-power-of-two divider
  double lut_per_crossbar_port = 1.5;
};

/// Cost of generating addresses for `parallel_accesses` simultaneous ports
/// of a mapping with transform `alpha` over `banks` banks.
[[nodiscard]] AddressGenCost estimate_addr_gen(
    const LinearTransform& alpha, Count banks, Count parallel_accesses,
    const AddressGenWeights& weights = {});

/// True when n is a power of two (mod/div degrade to bit selects).
[[nodiscard]] bool is_power_of_two(Count n);

}  // namespace mempart::hw
