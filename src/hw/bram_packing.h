// Aspect-ratio-aware block-RAM packing.
//
// The paper's Table 1 metric charges ceil(bits/9000) blocks — an aggregate
// bit count. A real FPGA mapper must also respect the block's configurable
// aspect ratios: a Cyclone M9K offers 8192x1, 4096x2, 2048x4, 1024x9,
// 512x18 and 256x36, and a bank of given depth x width is tiled by a grid
// of blocks in ONE chosen configuration. This module computes that minimal
// tiling, so the ablation benches can show how far the paper's aggregate
// accounting sits from a physical mapping (the answer: the per-bank aspect
// constraint dominates for many small banks — one more reason to cap N).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace mempart::hw {

/// One selectable geometry of a block RAM.
struct BramAspect {
  Count depth = 0;  ///< words per block in this configuration
  Count width = 0;  ///< bits per word

  friend bool operator==(const BramAspect&, const BramAspect&) = default;
};

/// The Cyclone IV M9K configuration set (true dual-port geometries).
[[nodiscard]] const std::vector<BramAspect>& m9k_aspects();

/// Result of packing one memory of `depth` words x `width` bits.
struct PackingResult {
  Count blocks = 0;        ///< total blocks in the tiling
  BramAspect aspect;       ///< chosen configuration
  Count depth_blocks = 0;  ///< ceil(depth / aspect.depth)
  Count width_blocks = 0;  ///< ceil(width / aspect.width)

  [[nodiscard]] std::string to_string() const;
};

/// Minimal tiling of a depth x width memory over the given aspect set.
/// Throws InvalidArgument for non-positive sizes or an empty aspect set.
[[nodiscard]] PackingResult pack_memory(
    Count depth, Count width_bits,
    const std::vector<BramAspect>& aspects = m9k_aspects());

/// Physical blocks for a whole banked layout: every bank packed separately
/// (banks are independent memories), summed.
[[nodiscard]] Count pack_banks(const std::vector<Count>& bank_depths,
                               Count width_bits,
                               const std::vector<BramAspect>& aspects =
                                   m9k_aspects());

}  // namespace mempart::hw
