// First-order memory energy model.
//
// The paper's introduction motivates partitioning partly through power
// (refs [7], [2]): besides bandwidth, splitting one big memory into N banks
// shortens bitlines/wordlines, so each access touches a smaller array. A
// standard first-order model prices a read in a memory of C words at
//
//     E_access(C) = e_base + e_word * sqrt(C)
//
// (the sqrt tracks the bitline/wordline growth of a square array), plus
// static leakage proportional to total allocated words and a per-bank
// peripheral constant. Absolute joules are meaningless here; the model is
// calibrated only for RELATIVE comparisons between banked layouts — the
// same status as the paper's own qualitative power argument.
#pragma once

#include <vector>

#include "common/types.h"

namespace mempart::hw {

/// Model coefficients (arbitrary energy units).
struct EnergyParams {
  double access_base = 1.0;       ///< decode/peripheral energy per access
  double access_per_sqrt_word = 0.05;  ///< bitline term per sqrt(words)
  double leakage_per_word = 1e-4; ///< static energy per allocated word/cycle
  double periphery_per_bank = 0.5;///< static per-bank overhead per cycle
};

/// Energy estimate for a run of `accesses` reads spread over `cycles`
/// cycles against banks of the given capacities.
struct EnergyEstimate {
  double dynamic = 0.0;  ///< access energy
  double stat = 0.0;     ///< leakage + periphery over the run
  [[nodiscard]] double total() const { return dynamic + stat; }
};

/// Accesses are assumed uniformly spread over the banks (true for
/// conflict-free linear-transform mappings on stencil sweeps).
[[nodiscard]] EnergyEstimate estimate_energy(
    const std::vector<Count>& bank_capacities, Count accesses, Count cycles,
    const EnergyParams& params = {});

}  // namespace mempart::hw
