#include "hw/addr_gen.h"

#include <sstream>

#include "common/errors.h"

namespace mempart::hw {

std::string AddressGenCost::to_string() const {
  std::ostringstream os;
  os << "mul=" << constant_multipliers << " add=" << adders
     << " mod=" << modulo_units << " div=" << divider_units
     << " xbar=" << crossbar_ports << " ~LUT=" << lut_estimate;
  return os.str();
}

bool is_power_of_two(Count n) { return n > 0 && (n & (n - 1)) == 0; }

AddressGenCost estimate_addr_gen(const LinearTransform& alpha, Count banks,
                                 Count parallel_accesses,
                                 const AddressGenWeights& weights) {
  MEMPART_REQUIRE(banks >= 1, "estimate_addr_gen: banks must be >= 1");
  MEMPART_REQUIRE(parallel_accesses >= 1,
                  "estimate_addr_gen: parallel_accesses must be >= 1");
  AddressGenCost cost;

  // One dot-product tree per parallel access port. Coefficients 0 cost
  // nothing, 1 is wiring, powers of two are shifts (wiring); everything else
  // is a constant multiplier.
  Count muls_per_port = 0;
  Count terms = 0;
  for (Count a : alpha.alpha()) {
    if (a == 0) continue;
    ++terms;
    if (a != 1 && !is_power_of_two(a)) ++muls_per_port;
  }
  const Count adds_per_port = terms > 0 ? terms - 1 : 0;

  // B(x): one modulo; F(x): one modulo + one divider — free when the bank
  // count is a power of two.
  const Count mods_per_port = is_power_of_two(banks) ? 0 : 2;
  const Count divs_per_port = is_power_of_two(banks) ? 0 : 1;

  cost.constant_multipliers = muls_per_port * parallel_accesses;
  cost.adders = adds_per_port * parallel_accesses;
  cost.modulo_units = mods_per_port * parallel_accesses;
  cost.divider_units = divs_per_port * parallel_accesses;
  cost.crossbar_ports = parallel_accesses * banks;

  cost.lut_estimate =
      weights.lut_per_const_mul * static_cast<double>(cost.constant_multipliers) +
      weights.lut_per_adder * static_cast<double>(cost.adders) +
      weights.lut_per_modulo * static_cast<double>(cost.modulo_units) +
      weights.lut_per_divider * static_cast<double>(cost.divider_units) +
      weights.lut_per_crossbar_port * static_cast<double>(cost.crossbar_ports);
  return cost;
}

}  // namespace mempart::hw
