#include "img/synthetic.h"

#include "common/random.h"

namespace mempart::img {

Image gradient(const NdShape& shape) {
  Image out(shape);
  Coord span = 0;
  for (Count w : shape.extents()) span += w - 1;
  if (span == 0) span = 1;
  const Coord denom = span;
  out.fill_from([denom](const NdIndex& x) {
    Coord sum = 0;
    for (Coord c : x) sum += c;
    return static_cast<Sample>(sum * 255 / denom);
  });
  return out;
}

Image checkerboard(const NdShape& shape, Count cell) {
  Image out(shape);
  const Count c = cell < 1 ? 1 : cell;
  out.fill_from([c](const NdIndex& x) {
    Coord parity = 0;
    for (Coord v : x) parity += v / c;
    return static_cast<Sample>((parity % 2 == 0) ? 0 : 255);
  });
  return out;
}

Image noise(const NdShape& shape, std::uint64_t seed) {
  Image out(shape);
  Rng rng(seed);
  for (Sample& s : out.data()) s = rng.uniform(0, 255);
  return out;
}

Image edge_scene(Count width, Count height, std::uint64_t seed) {
  Image out(NdShape({width, height}), 128);
  Rng rng(seed);

  // Bright disk in the upper-left quadrant.
  const Coord cx = width / 4;
  const Coord cy = height / 4;
  const Coord radius = std::min(width, height) / 6;

  // Dark rectangle in the lower-right quadrant.
  const Coord rx0 = width / 2;
  const Coord ry0 = height / 2;
  const Coord rx1 = rx0 + width / 3;
  const Coord ry1 = ry0 + height / 3;

  out.fill_from([&](const NdIndex& x) {
    const Coord dx = x[0] - cx;
    const Coord dy = x[1] - cy;
    Sample value = 128;
    if (dx * dx + dy * dy <= radius * radius) {
      value = 240;
    } else if (x[0] >= rx0 && x[0] < rx1 && x[1] >= ry0 && x[1] < ry1) {
      value = 30;
    }
    // Mild noise so flat regions are not perfectly flat.
    return value + static_cast<Sample>(rng.uniform(-3, 3));
  });
  return out;
}

Image ball_volume(Count w0, Count w1, Count w2) {
  Image out(NdShape({w0, w1, w2}), 16);
  const Coord c0 = w0 / 2;
  const Coord c1 = w1 / 2;
  const Coord c2 = w2 / 2;
  const Coord radius = std::min(std::min(w0, w1), w2) / 3;
  out.fill_from([&](const NdIndex& x) {
    const Coord d0 = x[0] - c0;
    const Coord d1 = x[1] - c1;
    const Coord d2 = x[2] - c2;
    return static_cast<Sample>(
        (d0 * d0 + d1 * d1 + d2 * d2 <= radius * radius) ? 200 : 16);
  });
  return out;
}

}  // namespace mempart::img
