// Morphological operators over arbitrary structure elements.
//
// The SE benchmark pattern comes from Zhao, Gui, Chen — "Edge detection
// based on multi-structure elements morphology" (reference [11] of the
// paper): edges are extracted as the difference between a dilation and an
// erosion under a small structure element. These operators complete that
// pipeline: erode/dilate take any Pattern as the window (the same object
// the partitioner banks for), so the SE example exercises the exact
// workload its Table 1 row models.
#pragma once

#include "img/image.h"
#include "pattern/pattern.h"

namespace mempart::img {

/// Erosion: output = min of input under the window at each valid position.
/// Border positions where the window does not fit keep the input value.
[[nodiscard]] Image erode(const Image& input, const Pattern& window);

/// Dilation: max of input under the window; same border handling.
[[nodiscard]] Image dilate(const Image& input, const Pattern& window);

/// Morphological gradient dilate(x) - erode(x): the edge detector of [11].
[[nodiscard]] Image morphological_gradient(const Image& input,
                                           const Pattern& window);

/// Opening: erode then dilate (removes speckles smaller than the window).
[[nodiscard]] Image opening(const Image& input, const Pattern& window);

/// Closing: dilate then erode (fills pits smaller than the window).
[[nodiscard]] Image closing(const Image& input, const Pattern& window);

}  // namespace mempart::img
