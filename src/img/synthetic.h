// Synthetic input generation.
//
// The paper evaluates on standard image resolutions but not on any specific
// image data — the partitioning result is data-independent. The example
// pipelines still need realistic content to demonstrate functional
// correctness, so these generators synthesise gray-scale scenes with actual
// edges (the feature the benchmark kernels detect): gradients, disks,
// rectangles and seeded noise, in any resolution, reproducibly.
#pragma once

#include <cstdint>

#include "common/nd.h"
#include "img/image.h"

namespace mempart::img {

/// Smooth diagonal gradient over [0, 255].
[[nodiscard]] Image gradient(const NdShape& shape);

/// Checkerboard with `cell`-sized tiles, values 0 / 255.
[[nodiscard]] Image checkerboard(const NdShape& shape, Count cell);

/// Uniform pseudo-random samples in [0, 255], reproducible via `seed`.
[[nodiscard]] Image noise(const NdShape& shape, std::uint64_t seed);

/// A 2-D gray-scale scene with a bright disk and a dark rectangle on a
/// mid-gray background plus mild seeded noise: strong, localised edges for
/// the edge-detection examples.
[[nodiscard]] Image edge_scene(Count width, Count height, std::uint64_t seed);

/// A 3-D volume with a bright ball centred in it (edges in all directions).
[[nodiscard]] Image ball_volume(Count w0, Count w1, Count w2);

}  // namespace mempart::img
