#include "img/banked_convolve.h"

#include <cmath>
#include <span>
#include <vector>

#include "common/errors.h"
#include "loopnest/schedule.h"
#include "loopnest/stencil_program.h"
#include "obs/trace.h"
#include "sim/access_plan.h"
#include "sim/banked_array.h"

namespace mempart::img {
namespace {

void check_args(const Image& input, const Kernel& kernel,
                const sim::AddressMap& map) {
  MEMPART_REQUIRE(map.array_shape() == input.shape(),
                  "convolve_banked: map/image shape mismatch");
  MEMPART_REQUIRE(kernel.rank() == input.rank(),
                  "convolve_banked: kernel/image rank mismatch");
}

}  // namespace

BankedConvolveResult convolve_banked_reference(const Image& input,
                                               const Kernel& kernel,
                                               const sim::AddressMap& map,
                                               Count ports_per_bank) {
  check_args(input, kernel, map);

  obs::Span span("img.convolve_banked");
  span.arg("kernel", kernel.name())
      .arg("taps", static_cast<Count>(kernel.taps().size()))
      .arg("banks", map.num_banks());

  // Scatter the image into its banks.
  sim::BankedArray array(map);
  array.fill_from([&](const NdIndex& x) { return input.at(x); });

  Image output(input.shape());
  sim::AccessEngine engine(map, ports_per_bank);
  const loopnest::StencilProgram program(input.shape(), kernel.support(),
                                         kernel.name());
  const auto& taps = kernel.taps();
  std::vector<NdIndex> group;
  group.reserve(taps.size());
  program.output_domain().for_each([&](const NdIndex& iv) {
    group.clear();
    double acc = 0.0;
    for (const KernelTap& tap : taps) {
      const NdIndex x = add(iv, tap.offset);
      group.push_back(x);
      acc += tap.weight * static_cast<double>(array.load(x));
    }
    engine.issue(group);
    output.set(iv, static_cast<Sample>(std::llround(acc)));
  });
  span.arg("cycles", engine.stats().cycles);
  sim::publish_stats(engine.stats(), "img.convolve");
  return {std::move(output), engine.stats()};
}

BankedConvolveResult convolve_banked(const Image& input, const Kernel& kernel,
                                     const sim::AddressMap& map,
                                     Count ports_per_bank) {
  if (!sim::AccessPlan::supports(map)) {
    return convolve_banked_reference(input, kernel, map, ports_per_bank);
  }
  check_args(input, kernel, map);

  obs::Span span("img.convolve_banked");
  span.arg("kernel", kernel.name())
      .arg("taps", static_cast<Count>(kernel.taps().size()))
      .arg("banks", map.num_banks())
      .arg("fast", 1);

  sim::BankedArray array(map);
  array.fill_from([&](const NdIndex& x) { return input.at(x); });
  const sim::BankedMemory& memory = array.memory();

  Image output(input.shape());
  sim::AccessEngine engine(map, ports_per_bank);
  const loopnest::StencilProgram program(input.shape(), kernel.support(),
                                         kernel.name());
  const sim::AccessPlan plan(map, kernel.support(),
                             loopnest::plan_domain(program.output_domain()));

  // The plan walks taps in the support's sorted-offset order, so realign the
  // kernel weights to that order once up front. Within-group order does not
  // affect the engine's demand counting.
  const auto& sorted = kernel.support().offsets();
  std::vector<double> weights;
  weights.reserve(sorted.size());
  for (const NdIndex& offset : sorted) {
    weights.push_back(kernel.weight_at(offset));
  }

  const size_t m = static_cast<size_t>(plan.taps());
  const int n = input.shape().rank();
  const Coord inner_step =
      program.output_domain().loops().back().step;
  NdIndex iv(static_cast<size_t>(n));
  // SoA consumption: tap planes are contiguous, so the accumulation runs
  // tap-major over a per-row accumulator. Each output element still sums
  // its taps in ascending-tap order — the identical floating-point order to
  // the group-major loop — so images stay bit-identical to the reference.
  std::vector<double> acc;
  plan.for_each_row_block([&](const NdIndex& row,
                              const sim::AccessPlan::RowBlock& block) {
    const size_t groups = static_cast<size_t>(block.groups);
    acc.assign(groups, 0.0);
    for (size_t t = 0; t < m; ++t) {
      const double weight = weights[t];
      const Count* bank_plane = block.banks.data() + t * groups;
      const Address* offset_plane = block.offsets.data() + t * groups;
      for (size_t g = 0; g < groups; ++g) {
        acc[g] += weight * static_cast<double>(
                               memory.read(bank_plane[g], offset_plane[g]));
      }
    }
    iv = row;
    Coord& inner = iv[static_cast<size_t>(n - 1)];
    for (size_t g = 0; g < groups; ++g) {
      output.set(iv, static_cast<Sample>(std::llround(acc[g])));
      inner += inner_step;
    }
    engine.issue_batch_soa(block.banks, block.taps, block.groups);
  });
  span.arg("cycles", engine.stats().cycles);
  sim::publish_stats(engine.stats(), "img.convolve");
  return {std::move(output), engine.stats()};
}

}  // namespace mempart::img
