#include "img/banked_convolve.h"

#include <cmath>

#include "common/errors.h"
#include "loopnest/stencil_program.h"
#include "obs/trace.h"
#include "sim/banked_array.h"

namespace mempart::img {

BankedConvolveResult convolve_banked(const Image& input, const Kernel& kernel,
                                     const sim::AddressMap& map,
                                     Count ports_per_bank) {
  MEMPART_REQUIRE(map.array_shape() == input.shape(),
                  "convolve_banked: map/image shape mismatch");
  MEMPART_REQUIRE(kernel.rank() == input.rank(),
                  "convolve_banked: kernel/image rank mismatch");

  obs::Span span("img.convolve_banked");
  span.arg("kernel", kernel.name())
      .arg("taps", static_cast<Count>(kernel.taps().size()))
      .arg("banks", map.num_banks());

  // Scatter the image into its banks.
  sim::BankedArray array(map);
  array.fill_from([&](const NdIndex& x) { return input.at(x); });

  Image output(input.shape());
  sim::AccessEngine engine(map, ports_per_bank);
  const loopnest::StencilProgram program(input.shape(), kernel.support(),
                                         kernel.name());
  const auto& taps = kernel.taps();
  std::vector<NdIndex> group;
  group.reserve(taps.size());
  program.output_domain().for_each([&](const NdIndex& iv) {
    group.clear();
    double acc = 0.0;
    for (const KernelTap& tap : taps) {
      const NdIndex x = add(iv, tap.offset);
      group.push_back(x);
      acc += tap.weight * static_cast<double>(array.load(x));
    }
    engine.issue(group);
    output.set(iv, static_cast<Sample>(std::llround(acc)));
  });
  span.arg("cycles", engine.stats().cycles);
  sim::publish_stats(engine.stats(), "img.convolve");
  return {std::move(output), engine.stats()};
}

}  // namespace mempart::img
