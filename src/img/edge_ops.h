// Composite edge-detection operators built from the kernel library.
//
// Convenience entry points for the examples: each wraps one or more
// convolve() calls with the standard post-processing (gradient magnitude,
// thresholding) for the benchmark operators of §5.2.
#pragma once

#include "img/image.h"

namespace mempart::img {

/// LoG response (Fig. 1): raw Laplacian-of-Gaussian output.
[[nodiscard]] Image log_response(const Image& input);

/// Binary edge map: |LoG response| >= threshold.
[[nodiscard]] Image log_edges(const Image& input, Sample threshold);

/// Prewitt gradient magnitude |Gx| + |Gy| (L1 approximation).
[[nodiscard]] Image prewitt_magnitude(const Image& input);

/// 3-D Sobel z-gradient response over a volume.
[[nodiscard]] Image sobel3d_z_response(const Image& volume);

/// Fraction of pixels marked as edge in a binary map (diagnostics).
[[nodiscard]] double edge_density(const Image& edges);

}  // namespace mempart::img
