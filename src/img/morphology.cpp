#include "img/morphology.h"

#include <algorithm>
#include <limits>

#include "common/errors.h"
#include "loopnest/stencil_program.h"

namespace mempart::img {
namespace {

enum class Reduction { kMin, kMax };

/// Morphology convention: the structure element is applied CENTRED on the
/// output pixel (its bounding-box midpoint sits at offset zero), unlike the
/// stencil convention where offsets are taken literally.
Pattern centred(const Pattern& window) {
  NdIndex shift(static_cast<size_t>(window.rank()));
  for (int d = 0; d < window.rank(); ++d) {
    shift[static_cast<size_t>(d)] =
        -(window.min_coord(d) + window.max_coord(d)) / 2;
  }
  return window.translated(shift);
}

Image reduce(const Image& input, const Pattern& se, Reduction reduction) {
  MEMPART_REQUIRE(se.rank() == input.rank(),
                  "morphology: window/image rank mismatch");
  const Pattern window = centred(se);
  Image output = input;  // border positions keep the input value
  const loopnest::StencilProgram program(input.shape(), window, "morph");
  program.output_domain().for_each([&](const NdIndex& iv) {
    Sample acc = reduction == Reduction::kMin
                     ? std::numeric_limits<Sample>::max()
                     : std::numeric_limits<Sample>::min();
    for (const NdIndex& x : window.at(iv)) {
      const Sample s = input.at(x);
      acc = reduction == Reduction::kMin ? std::min(acc, s) : std::max(acc, s);
    }
    output.set(iv, acc);
  });
  return output;
}

}  // namespace

Image erode(const Image& input, const Pattern& window) {
  return reduce(input, window, Reduction::kMin);
}

Image dilate(const Image& input, const Pattern& window) {
  return reduce(input, window, Reduction::kMax);
}

Image morphological_gradient(const Image& input, const Pattern& window) {
  const Image dilated = dilate(input, window);
  const Image eroded = erode(input, window);
  Image output(input.shape());
  for (size_t i = 0; i < output.data().size(); ++i) {
    output.data()[i] = dilated.data()[i] - eroded.data()[i];
  }
  return output;
}

Image opening(const Image& input, const Pattern& window) {
  return dilate(erode(input, window), window);
}

Image closing(const Image& input, const Pattern& window) {
  return erode(dilate(input, window), window);
}

}  // namespace mempart::img
