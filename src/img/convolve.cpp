#include "img/convolve.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/errors.h"
#include "loopnest/stencil_program.h"

namespace mempart::img {

Image convolve(const Image& input, const Kernel& kernel) {
  MEMPART_REQUIRE(kernel.rank() == input.rank(),
                  "convolve: kernel/image rank mismatch");
  Image output(input.shape());
  const loopnest::StencilProgram program(input.shape(), kernel.support(),
                                         kernel.name());
  const auto& taps = kernel.taps();
  program.output_domain().for_each([&](const NdIndex& iv) {
    double acc = 0.0;
    for (const KernelTap& tap : taps) {
      acc += tap.weight * static_cast<double>(input.at(add(iv, tap.offset)));
    }
    output.set(iv, static_cast<Sample>(std::llround(acc)));
  });
  return output;
}

Image median_filter(const Image& input, const Pattern& window) {
  MEMPART_REQUIRE(window.rank() == input.rank(),
                  "median_filter: window/image rank mismatch");
  Image output(input.shape());
  const loopnest::StencilProgram program(input.shape(), window, "median");
  std::vector<Sample> values;
  values.reserve(static_cast<size_t>(window.size()));
  program.output_domain().for_each([&](const NdIndex& iv) {
    values.clear();
    for (const NdIndex& x : window.at(iv)) values.push_back(input.at(x));
    auto mid = values.begin() + static_cast<std::ptrdiff_t>(values.size() / 2);
    std::nth_element(values.begin(), mid, values.end());
    output.set(iv, *mid);
  });
  return output;
}

}  // namespace mempart::img
