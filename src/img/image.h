// Dense n-dimensional raster (image / volume) with integer samples.
//
// The functional counterpart of the memory arrays being partitioned:
// the example pipelines run real stencils over Image data twice — once
// directly and once through the banked simulator — and require bit-exact
// agreement. Samples are sim::Word (int64) so 16-bit pixels and every
// integer-kernel intermediate are exact.
#pragma once

#include <functional>
#include <vector>

#include "common/nd.h"
#include "common/types.h"
#include "sim/banked_memory.h"

namespace mempart::img {

using Sample = sim::Word;

/// Row-major dense raster of arbitrary rank.
class Image {
 public:
  explicit Image(NdShape shape, Sample initial = 0);

  [[nodiscard]] const NdShape& shape() const { return shape_; }
  [[nodiscard]] int rank() const { return shape_.rank(); }
  [[nodiscard]] Count size() const { return static_cast<Count>(data_.size()); }

  [[nodiscard]] Sample at(const NdIndex& x) const;
  void set(const NdIndex& x, Sample value);

  /// Direct access for bulk operations.
  [[nodiscard]] const std::vector<Sample>& data() const { return data_; }
  [[nodiscard]] std::vector<Sample>& data() { return data_; }

  /// Sets every element to generator(x).
  void fill_from(const std::function<Sample(const NdIndex&)>& generator);

  /// Minimum and maximum sample values.
  [[nodiscard]] Sample min_value() const;
  [[nodiscard]] Sample max_value() const;

  friend bool operator==(const Image&, const Image&) = default;

 private:
  NdShape shape_;
  std::vector<Sample> data_;
};

}  // namespace mempart::img
