// PGM (portable graymap) serialisation for 2-D images.
//
// The examples detect edges on synthetic scenes; saving inputs and edge
// maps as PGM makes the results inspectable with any image viewer and
// diffable in regression runs. Plain ASCII "P2" format: trivially portable,
// no dependencies. Samples are clamped to [0, maxval] on save.
#pragma once

#include <string>

#include "img/image.h"

namespace mempart::img {

/// Serialises a 2-D image as ASCII PGM (P2). Samples are clamped to
/// [0, maxval]. Throws InvalidArgument for non-2-D images or maxval < 1.
[[nodiscard]] std::string to_pgm(const Image& image, Sample maxval = 255);

/// Parses an ASCII PGM (P2) string back into an image. Tolerates comments
/// ('#' lines) and arbitrary whitespace. Throws InvalidArgument on
/// malformed input.
[[nodiscard]] Image from_pgm(const std::string& text);

/// Convenience: write to / read from a file path.
void save_pgm(const Image& image, const std::string& path,
              Sample maxval = 255);
[[nodiscard]] Image load_pgm(const std::string& path);

/// Rescales an image's sample range linearly onto [0, 255] (for viewing
/// signed responses like LoG output). A constant image maps to 0.
[[nodiscard]] Image normalize_for_display(const Image& image);

}  // namespace mempart::img
