// Stencil evaluation THROUGH the partitioned memory.
//
// The end-to-end demonstration of the system: the input image is physically
// scattered across banks by an AddressMap, the loop nest replays Fig. 1(b)
// reading every sample back out of its bank while the AccessEngine charges
// cycles per parallel group. The produced image must equal the direct
// convolution bit-for-bit (the mapping is transparent to the computation);
// the interesting output is the cycle statistics — 1 cycle per iteration
// when delta_P = 0, versus m cycles on the unpartitioned FlatAddressMap.
#pragma once

#include "img/image.h"
#include "pattern/kernel.h"
#include "sim/access_engine.h"
#include "sim/address_map.h"

namespace mempart::img {

/// Output image plus the access-timing evidence.
struct BankedConvolveResult {
  Image output;
  sim::AccessStats stats;
};

/// Runs `kernel` over `input` with every sample fetched from the banked
/// layout defined by `map`. `map.array_shape()` must equal `input.shape()`.
/// Uses the compiled AccessPlan fast path when the map supports it (banks
/// and offsets from incremental updates, one issue_batch per row); otherwise
/// falls back to convolve_banked_reference. Output and statistics are
/// bit-identical either way.
[[nodiscard]] BankedConvolveResult convolve_banked(const Image& input,
                                                   const Kernel& kernel,
                                                   const sim::AddressMap& map,
                                                   Count ports_per_bank = 1);

/// The original per-access path (virtual bank_of/offset_of per sample) —
/// kept as the oracle the fast path is tested against.
[[nodiscard]] BankedConvolveResult convolve_banked_reference(
    const Image& input, const Kernel& kernel, const sim::AddressMap& map,
    Count ports_per_bank = 1);

}  // namespace mempart::img
