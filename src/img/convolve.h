// Direct (reference) stencil evaluation.
//
// Evaluates a Kernel over an Image exactly as Fig. 1(b) writes it: for every
// iteration vector where the whole support is in bounds, the output is the
// weighted sum of the input samples; border positions that the support would
// overrun are left at 0. Weights are doubles; results are rounded to the
// nearest integer sample, so integer kernels (LoG, Prewitt, Sobel) are
// exact. This is the oracle the banked pipeline must match bit-for-bit.
#pragma once

#include "img/image.h"
#include "pattern/kernel.h"
#include "pattern/pattern.h"

namespace mempart::img {

/// Convolves `input` with `kernel` (any matching rank). Output has the same
/// shape; positions where the support does not fit stay 0.
[[nodiscard]] Image convolve(const Image& input, const Kernel& kernel);

/// Order-statistic filter: output at each valid position is the median of
/// the input samples under `window`. Same border handling as convolve().
[[nodiscard]] Image median_filter(const Image& input, const Pattern& window);

}  // namespace mempart::img
