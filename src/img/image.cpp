#include "img/image.h"

#include <algorithm>

#include "common/errors.h"

namespace mempart::img {

Image::Image(NdShape shape, Sample initial)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(shape_.volume()), initial) {}

Sample Image::at(const NdIndex& x) const {
  return data_[static_cast<size_t>(shape_.flatten(x))];
}

void Image::set(const NdIndex& x, Sample value) {
  data_[static_cast<size_t>(shape_.flatten(x))] = value;
}

void Image::fill_from(const std::function<Sample(const NdIndex&)>& generator) {
  shape_.for_each([&](const NdIndex& x) { set(x, generator(x)); });
}

Sample Image::min_value() const {
  return *std::min_element(data_.begin(), data_.end());
}

Sample Image::max_value() const {
  return *std::max_element(data_.begin(), data_.end());
}

}  // namespace mempart::img
