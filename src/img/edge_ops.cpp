#include "img/edge_ops.h"

#include <cstdlib>

#include "img/convolve.h"
#include "pattern/pattern_library.h"

namespace mempart::img {

Image log_response(const Image& input) {
  return convolve(input, patterns::log5x5_kernel());
}

Image log_edges(const Image& input, Sample threshold) {
  Image response = log_response(input);
  for (Sample& s : response.data()) {
    s = (std::llabs(s) >= threshold) ? 1 : 0;
  }
  return response;
}

Image prewitt_magnitude(const Image& input) {
  const Image gx = convolve(input, patterns::prewitt_horizontal_kernel());
  const Image gy = convolve(input, patterns::prewitt_vertical_kernel());
  Image out(input.shape());
  for (size_t i = 0; i < out.data().size(); ++i) {
    out.data()[i] = std::llabs(gx.data()[i]) + std::llabs(gy.data()[i]);
  }
  return out;
}

Image sobel3d_z_response(const Image& volume) {
  return convolve(volume, patterns::sobel3d_z_kernel());
}

double edge_density(const Image& edges) {
  Count marked = 0;
  for (Sample s : edges.data()) {
    if (s != 0) ++marked;
  }
  return static_cast<double>(marked) / static_cast<double>(edges.size());
}

}  // namespace mempart::img
