// NDJSON request/response grammar of `mempart serve`.
//
// A request line is the `mempart batch` CheckConfig schema plus two serving
// fields, both optional strings echoed verbatim in the response (a tag the
// request didn't carry is omitted from the response entirely):
//
//   {"id": "c3-17", "tenant": "imaging",
//    "offsets": [[0,0],[0,1],[1,0]], "shape": [640,480],
//    "max_banks": 0, "bank_bandwidth": 1,
//    "strategy": "fast_fold", "tail": "padded",
//    "seed": 0, "note": "provenance"}
//
// `id` is the client's correlation key — serve-mode responses are written
// as solves complete, NOT in request order (the pipe `mempart batch` keeps
// input order; a daemon cannot without head-of-line blocking), so clients
// match responses to requests by id. `tenant` tags the request's owner for
// multi-tenant accounting. `seed`/`note` are accepted for compatibility
// with the batch/fuzz corpus and ignored.
//
// Response lines (docs/SERVING.md has the full field table):
//
//   {"id": ..., "tenant": ..., "ok": true, "num_banks": N, ...}
//   {"id": ..., "tenant": ..., "ok": false, "error": "..."}
//   {"id": ..., "tenant": ..., "ok": false, "shed": true, "error": "..."}
//
// A `shed` response is the admission-control backpressure signal: the
// request was syntactically fine but the bounded queue was full (or the
// server is draining), so it was rejected WITHOUT being solved. Clients
// should back off and retry; nothing about the request itself is wrong.
#pragma once

#include <string>

#include "core/partitioner.h"

namespace mempart::serve {

/// One parsed serve request: the solver inputs plus the serving tags.
struct ServeRequest {
  std::string id;      ///< client correlation key, echoed verbatim
  std::string tenant;  ///< owner tag, echoed verbatim
  PartitionRequest request;
};

/// Parses one NDJSON request line into `out`. Returns true on success;
/// on failure returns false with the diagnostic in *error. `out.id` and
/// `out.tenant` are filled best-effort even on failure (any tag parsed
/// before the malformed token survives), so error responses can still be
/// correlated.
[[nodiscard]] bool parse_request(const std::string& line, ServeRequest& out,
                                 std::string* error);

/// Renders the success response for a solved request.
[[nodiscard]] std::string ok_response(const ServeRequest& request,
                                      const PartitionSolution& solution);

/// Renders the failure response (parse error or solver rejection).
[[nodiscard]] std::string error_response(const ServeRequest& request,
                                         const std::string& error);

/// Renders the admission-control backpressure response.
[[nodiscard]] std::string shed_response(const ServeRequest& request,
                                        const std::string& reason);

}  // namespace mempart::serve
