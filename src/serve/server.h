// The `mempart serve` daemon: a persistent partitioning service over the
// NDJSON request grammar (serve/request.h).
//
// Two transports share one engine:
//
//   - pipe mode: run_pipe(in, out) reads request lines from one stream and
//     writes response lines to another — `mempart serve` with no --socket
//     wires these to stdin/stdout so the daemon drops into shell pipelines
//     exactly like `mempart batch`.
//   - socket mode: run_socket() listens on an AF_UNIX stream socket; each
//     connection speaks the same line protocol and gets responses to its
//     own requests only.
//
// Engine shape: reader threads parse lines and try_push jobs into the
// bounded admission queue (serve/admission.h); on a full queue the reader
// immediately writes a `shed` response — backpressure is explicit, never
// silent buffering. A fixed pool of solver workers pops jobs, batches
// whatever queued up behind them (up to max_batch), and dispatches through
// Partitioner::solve_many_collect so canonically equal requests dedup and
// the shared SolveCache serves repeats across requests, connections and
// tenants — the cross-request state that makes a daemon worth running.
//
// Shutdown (request_shutdown(), wired to SIGTERM/SIGINT by the CLI) is a
// drain, not an abort: admission stops, connection readers unblock, every
// already-admitted job is solved and answered, workers exit only when the
// queue is closed AND empty, and the CLI's telemetry session then writes
// the final snapshot. No admitted request is ever dropped without a
// response.
#pragma once

#include <atomic>
#include <chrono>
#include <iosfwd>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "core/partitioner.h"
#include "core/solve_cache.h"
#include "serve/admission.h"
#include "serve/request.h"

namespace mempart::serve {

/// Daemon configuration (CLI flags map 1:1; docs/SERVING.md).
struct ServeOptions {
  /// AF_UNIX socket path; empty selects pipe mode over run_pipe's streams.
  std::string socket_path;
  /// Solver worker threads. 0 = common::default_thread_count().
  Count threads = 0;
  /// Admission-queue bound; requests beyond it are shed. Minimum 1.
  Count queue_depth = 1024;
  /// Max requests one worker drains into a single solve_many batch.
  Count max_batch = 32;
  /// Solve cache shared by all workers. nullptr = SolveCache::global().
  SolveCache* cache = nullptr;
};

/// End-of-run accounting, also exported live as serve.* metrics.
struct ServeSummary {
  std::int64_t admitted = 0;   ///< jobs that entered the queue
  std::int64_t solved = 0;     ///< ok responses written
  std::int64_t failed = 0;     ///< error responses (parse or solver reject)
  std::int64_t shed = 0;       ///< backpressure rejections
  std::int64_t connections = 0;   ///< socket mode: connections accepted
  std::int64_t write_failures = 0;  ///< responses lost to a dead downstream
  bool downstream_closed = false;   ///< pipe mode ended on EPIPE/badbit
  bool drained = false;             ///< ended via request_shutdown()
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Runs pipe mode until `in` hits EOF, `out` dies (EPIPE), or
  /// request_shutdown() — then drains and returns. Blocking.
  ServeSummary run_pipe(std::istream& in, std::ostream& out);

  /// Runs socket mode until request_shutdown() — then stops accepting,
  /// unblocks connection readers, drains, and returns. Blocking. Throws
  /// Error when the socket cannot be created/bound.
  ServeSummary run_socket();

  /// Initiates the graceful drain. Async-signal-safe (an atomic store plus
  /// a self-pipe write), so the CLI calls it straight from the SIGTERM/
  /// SIGINT handler. Idempotent.
  void request_shutdown() noexcept;

  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Publishes serve.* gauges (queue depth, admitted/solved/failed/shed,
  /// connections) plus the bound cache's cache.* gauges into the obs
  /// registry. Wired as the Snapshotter's before-snapshot hook so every
  /// exported tick carries live numbers.
  void publish_stats() const;

  [[nodiscard]] ServeSummary summary() const;

  [[nodiscard]] const ServeOptions& options() const { return options_; }

 private:
  class ResponseSink;
  class StreamSink;
  class SocketSink;
  struct Connection;

  /// One admitted unit of work: the parsed request plus where its response
  /// goes and when it was admitted (queue-wait latency).
  struct Job {
    ServeRequest request;
    std::shared_ptr<ResponseSink> sink;
    std::chrono::steady_clock::time_point admitted_at;
  };

  void start_workers();
  void join_workers();
  void worker_loop();

  /// Parses one request line and either admits it or answers immediately
  /// (parse error / shed). Called from the pipe reader and every socket
  /// connection reader; thread-safe.
  void handle_line(const std::string& line,
                   const std::shared_ptr<ResponseSink>& sink);

  /// Writes one response line through `sink`, counting a write failure when
  /// the downstream is gone (the job is still accounted solved/failed — the
  /// server did its part).
  void send_response(const std::shared_ptr<ResponseSink>& sink,
                     const std::string& line);

  /// Reads request lines from one accepted connection until EOF/drain.
  void serve_connection(const std::shared_ptr<Connection>& connection);

  ServeOptions options_;
  SolveCache* cache_;
  BoundedQueue<Job> queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> downstream_closed_{false};
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: request_shutdown -> poll loop

  std::atomic<std::int64_t> admitted_{0};
  std::atomic<std::int64_t> solved_{0};
  std::atomic<std::int64_t> failed_{0};
  std::atomic<std::int64_t> shed_{0};
  std::atomic<std::int64_t> connections_{0};
  std::atomic<std::int64_t> write_failures_{0};
  std::atomic<bool> drained_{false};
};

}  // namespace mempart::serve
