#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>

#include "common/annotations.h"
#include "common/errors.h"
#include "common/parallel.h"
#include "obs/histogram.h"
#include "obs/metrics.h"

namespace mempart::serve {
namespace {

std::int64_t elapsed_ns(std::chrono::steady_clock::time_point from,
                        std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
      .count();
}

bool blank_line(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

/// Where a job's response goes. One implementation per transport; both are
/// safe to call from any worker concurrently.
class Server::ResponseSink {
 public:
  virtual ~ResponseSink() = default;
  ResponseSink() = default;
  ResponseSink(const ResponseSink&) = delete;
  ResponseSink& operator=(const ResponseSink&) = delete;

  /// Writes one NDJSON response line. False means the downstream is gone
  /// (broken pipe / dead connection); the response is lost.
  [[nodiscard]] virtual bool write_line(const std::string& line) = 0;
};

/// Pipe mode: all responses interleave onto one ostream, one line per
/// write under the mutex so concurrent workers never shear a line. Each
/// line is flushed immediately — a serve client is latency-bound, not
/// throughput-bound, and buffering responses past a request's completion
/// would just add tail latency.
class Server::StreamSink final : public ResponseSink {
 public:
  StreamSink(Server& server, std::ostream& out)
      : server_(server), out_(out) {}

  bool write_line(const std::string& line) override {
    MutexLock lock(mutex_);
    out_ << line << '\n';
    out_.flush();
    if (out_.good()) return true;
    // badbit after a flush is how an ostream reports EPIPE (the CLI ignores
    // SIGPIPE so the write fails instead of killing the process).
    server_.downstream_closed_.store(true, std::memory_order_release);
    return false;
  }

 private:
  Server& server_;
  Mutex mutex_;
  std::ostream& out_ MEMPART_GUARDED_BY(mutex_);
};

/// One accepted socket connection. The fd is closed when the last holder
/// (reader thread or in-flight job sink) drops its reference, so a
/// connection stays writable exactly as long as it has responses pending.
struct Server::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() { ::close(fd); }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  const int fd;
  Mutex write_mutex;
  /// Set on the first failed send; later responses to this connection are
  /// dropped instead of poking a dead peer.
  bool dead MEMPART_GUARDED_BY(write_mutex) = false;
};

/// Socket mode: responses go back on the requesting connection only.
class Server::SocketSink final : public ResponseSink {
 public:
  explicit SocketSink(std::shared_ptr<Connection> connection)
      : connection_(std::move(connection)) {}

  bool write_line(const std::string& line) override {
    Connection& conn = *connection_;
    MutexLock lock(conn.write_mutex);
    if (conn.dead) return false;
    std::string framed = line;
    framed.push_back('\n');
    const char* data = framed.data();
    std::size_t left = framed.size();
    while (left > 0) {
      // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE here, not
      // as a process-wide SIGPIPE.
      const ssize_t n = ::send(conn.fd, data, left, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        conn.dead = true;
        return false;
      }
      data += n;
      left -= static_cast<std::size_t>(n);
    }
    return true;
  }

 private:
  std::shared_ptr<Connection> connection_;
};

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      cache_(options_.cache != nullptr ? options_.cache
                                       : &SolveCache::global()),
      queue_(options_.queue_depth) {
  MEMPART_REQUIRE(options_.threads >= 0, "serve: threads must be >= 0");
  MEMPART_REQUIRE(options_.max_batch >= 1, "serve: max_batch must be >= 1");
  // Self-pipe for request_shutdown(): the only async-signal-safe way to
  // wake a poll() loop. Non-blocking so a flood of signals cannot wedge
  // the handler on a full pipe.
  if (::pipe2(wake_fds_, O_CLOEXEC | O_NONBLOCK) != 0) {
    wake_fds_[0] = wake_fds_[1] = -1;
  }
}

Server::~Server() {
  for (const int fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void Server::request_shutdown() noexcept {
  shutdown_.store(true, std::memory_order_release);
  if (wake_fds_[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t rc = ::write(wake_fds_[1], &byte, 1);
  }
}

void Server::start_workers() {
  const Count n =
      options_.threads > 0 ? options_.threads : default_thread_count();
  workers_.reserve(static_cast<std::size_t>(n));
  for (Count i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Server::join_workers() {
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void Server::send_response(const std::shared_ptr<ResponseSink>& sink,
                           const std::string& line) {
  if (!sink->write_line(line)) {
    write_failures_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.write_failures");
  }
}

void Server::handle_line(const std::string& line,
                         const std::shared_ptr<ResponseSink>& sink) {
  obs::count("serve.requests");
  Job job;
  job.sink = sink;
  std::string error;
  if (!parse_request(line, job.request, &error)) {
    obs::count("serve.parse_errors");
    failed_.fetch_add(1, std::memory_order_relaxed);
    send_response(sink, error_response(job.request, error));
    return;
  }
  // Keep the tags for the shed response: try_push consumes the job.
  ServeRequest rejected;
  rejected.id = job.request.id;
  rejected.tenant = job.request.tenant;
  job.admitted_at = std::chrono::steady_clock::now();
  if (queue_.try_push(std::move(job))) {
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  shed_.fetch_add(1, std::memory_order_relaxed);
  obs::count("serve.shed");
  const std::string reason =
      queue_.closed()
          ? "server draining; retry against the next instance"
          : "server overloaded: admission queue full (depth " +
                std::to_string(queue_.max_depth()) + "); back off and retry";
  send_response(sink, shed_response(rejected, reason));
}

void Server::worker_loop() {
  // Each worker owns a Partitioner (instances are not thread-safe) but all
  // share cache_, so a pattern solved for one connection is a cache hit for
  // every later request in its equivalence class.
  Partitioner partitioner(cache_);
  BatchOptions batch_options;
  // Workers ARE the parallelism; a nested pool per batch would oversubscribe.
  // A single-thread pool runs solve_many inline on this thread.
  batch_options.threads = 1;
  batch_options.min_grain = 1;
  std::vector<Job> jobs;
  std::vector<PartitionRequest> requests;
  for (;;) {
    jobs.clear();
    std::optional<Job> first = queue_.pop();
    if (!first.has_value()) return;  // closed and fully drained
    jobs.push_back(std::move(*first));
    if (options_.max_batch > 1) {
      queue_.try_pop_many(jobs, options_.max_batch - 1);
    }
    const auto start = std::chrono::steady_clock::now();
    requests.clear();
    for (const Job& job : jobs) {
      obs::record_latency("serve.queue_wait.ns",
                          elapsed_ns(job.admitted_at, start));
      requests.push_back(job.request.request);
    }
    std::vector<BatchResult> results;
    {
      obs::LatencyTimer timer("serve.solve_batch.ns");
      results = partitioner.solve_many_collect(requests, batch_options);
    }
    const auto done = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const Job& job = jobs[i];
      const BatchResult& result = results[i];
      if (result.ok()) {
        solved_.fetch_add(1, std::memory_order_relaxed);
        send_response(job.sink, ok_response(job.request, *result.solution));
      } else {
        failed_.fetch_add(1, std::memory_order_relaxed);
        send_response(job.sink, error_response(job.request, result.error));
      }
      const std::int64_t request_ns = elapsed_ns(job.admitted_at, done);
      obs::record_latency("serve.request.ns", request_ns);
      // Split by cache outcome: a hit is a rehydration (microseconds), a
      // miss waits on a cold solve, so the combined histogram is bimodal
      // and its percentiles track neither population. The miss series is
      // the one capacity planning cares about.
      obs::record_latency(result.cache_hit ? "serve.request.hit.ns"
                                           : "serve.request.miss.ns",
                          request_ns);
    }
  }
}

ServeSummary Server::run_pipe(std::istream& in, std::ostream& out) {
  start_workers();
  const auto sink = std::make_shared<StreamSink>(*this, out);
  std::string line;
  while (!shutdown_requested() &&
         !downstream_closed_.load(std::memory_order_acquire)) {
    // SIGTERM/SIGINT arrive mid-getline: the CLI installs its handlers
    // without SA_RESTART, so the blocked read fails with EINTR, getline
    // returns false, and the loop falls through to the drain below.
    if (!std::getline(in, line)) break;
    if (blank_line(line)) continue;
    handle_line(line, sink);
  }
  // Drain: no new admissions, every queued job still gets solved and
  // answered before the workers exit.
  queue_.close();
  join_workers();
  if (shutdown_requested()) drained_.store(true, std::memory_order_release);
  out.flush();
  return summary();
}

ServeSummary Server::run_socket() {
  const std::string& path = options_.socket_path;
  MEMPART_REQUIRE(!path.empty(), "serve: run_socket needs a socket path");
  sockaddr_un addr{};
  MEMPART_REQUIRE(path.size() < sizeof(addr.sun_path),
                  "serve: socket path too long for AF_UNIX (max " +
                      std::to_string(sizeof(addr.sun_path) - 1) + " bytes)");
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  MEMPART_REQUIRE(listen_fd >= 0,
                  std::string("serve: socket(): ") + std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());  // a stale socket from a crashed run blocks bind
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd);
    throw InvalidArgument("serve: bind '" + path +
                          "': " + std::strerror(err));
  }
  if (::listen(listen_fd, 64) != 0) {
    const int err = errno;
    ::close(listen_fd);
    ::unlink(path.c_str());
    throw InvalidArgument("serve: listen '" + path +
                          "': " + std::strerror(err));
  }

  start_workers();
  std::vector<std::thread> readers;
  // weak_ptrs so a closed connection's fd is released as soon as its reader
  // and last in-flight response drop it, not at server shutdown.
  std::vector<std::weak_ptr<Connection>> live;
  pollfd fds[2] = {{listen_fd, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
  while (!shutdown_requested()) {
    fds[0].revents = 0;
    fds[1].revents = 0;
    const int rc = ::poll(fds, wake_fds_[0] >= 0 ? 2 : 1, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;  // signal checked by the loop condition
      break;
    }
    if (fds[1].revents != 0 || shutdown_requested()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    connections_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.connections");
    auto connection = std::make_shared<Connection>(fd);
    std::erase_if(live, [](const std::weak_ptr<Connection>& w) {
      return w.expired();
    });
    live.push_back(connection);
    readers.emplace_back([this, connection = std::move(connection)] {
      serve_connection(connection);
    });
  }
  ::close(listen_fd);
  ::unlink(path.c_str());

  // Drain: half-close every live connection so its reader sees EOF and
  // stops admitting; the write side stays open until every queued response
  // lands. Then the usual close-and-join empties the queue.
  for (const std::weak_ptr<Connection>& weak : live) {
    if (const std::shared_ptr<Connection> conn = weak.lock()) {
      ::shutdown(conn->fd, SHUT_RD);
    }
  }
  for (std::thread& reader : readers) reader.join();
  queue_.close();
  join_workers();
  drained_.store(true, std::memory_order_release);
  return summary();
}

void Server::serve_connection(const std::shared_ptr<Connection>& connection) {
  const auto sink = std::make_shared<SocketSink>(connection);
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(connection->fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // peer EOF, or our own SHUT_RD during drain
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t pos = buffer.find('\n', start);
         pos != std::string::npos; pos = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, pos - start);
      start = pos + 1;
      if (!blank_line(line)) handle_line(line, sink);
    }
    buffer.erase(0, start);
  }
  // A trailing request without a final newline still deserves an answer.
  if (!blank_line(buffer)) handle_line(buffer, sink);
}

void Server::publish_stats() const {
  obs::gauge("serve.queue.depth", static_cast<double>(queue_.depth()));
  obs::gauge("serve.queue.max_depth",
             static_cast<double>(queue_.max_depth()));
  obs::gauge("serve.admitted",
             static_cast<double>(admitted_.load(std::memory_order_relaxed)));
  obs::gauge("serve.solved",
             static_cast<double>(solved_.load(std::memory_order_relaxed)));
  obs::gauge("serve.failed",
             static_cast<double>(failed_.load(std::memory_order_relaxed)));
  obs::gauge("serve.shed",
             static_cast<double>(shed_.load(std::memory_order_relaxed)));
  obs::gauge(
      "serve.connections",
      static_cast<double>(connections_.load(std::memory_order_relaxed)));
  obs::gauge(
      "serve.write_failures",
      static_cast<double>(write_failures_.load(std::memory_order_relaxed)));
  cache_->publish_stats();
}

ServeSummary Server::summary() const {
  ServeSummary out;
  out.admitted = admitted_.load(std::memory_order_relaxed);
  out.solved = solved_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.connections = connections_.load(std::memory_order_relaxed);
  out.write_failures = write_failures_.load(std::memory_order_relaxed);
  out.downstream_closed = downstream_closed_.load(std::memory_order_acquire);
  out.drained = drained_.load(std::memory_order_acquire);
  return out;
}

}  // namespace mempart::serve
