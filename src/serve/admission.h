// Admission control for `mempart serve`: a bounded MPMC queue between the
// connection readers and the solver workers.
//
// The bound is the backpressure mechanism. Readers never block on a full
// queue — try_push() fails immediately and the server answers with a `shed`
// response instead of buffering unboundedly (which would trade an explicit,
// retryable rejection for silent latency growth and eventual OOM). Workers
// block in pop() until a job arrives or the queue is closed and drained,
// which is exactly the graceful-shutdown contract: close() wakes everyone,
// already-admitted jobs still come out, and only then do workers see the
// "no more work" signal and exit.
#pragma once

#include <condition_variable>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/errors.h"
#include "common/types.h"

namespace mempart::serve {

/// Bounded multi-producer/multi-consumer queue. All operations are
/// thread-safe; the template keeps it reusable for tests with plain ints.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(Count max_depth) : max_depth_(max_depth) {
    MEMPART_REQUIRE(max_depth >= 1, "BoundedQueue: max_depth must be >= 1");
  }
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Admits `item` unless the queue is at capacity or closed. Never blocks:
  /// a false return is the signal to shed.
  [[nodiscard]] bool try_push(T item) {
    {
      UniqueLock lock(mutex_);
      if (closed_ || static_cast<Count>(items_.size()) >= max_depth_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available (returned) or the queue is closed
  /// AND drained (nullopt — the consumer's signal to exit). Items admitted
  /// before close() are always handed out, never dropped.
  [[nodiscard]] std::optional<T> pop() {
    UniqueLock lock(mutex_);
    // Explicit wait loop (not the predicate overload): a predicate lambda
    // would read guarded members from a context the thread-safety analysis
    // treats as unlocked (same idiom as common::ThreadPool).
    while (!closed_ && items_.empty()) ready_.wait(lock);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Moves up to `max_items` immediately available items into `out` without
  /// blocking; returns how many were taken. Workers use this to form a
  /// solve_many batch out of whatever queued up behind the item pop() gave
  /// them, so bursts amortise the canonical dedup without adding latency
  /// when the queue runs shallow.
  Count try_pop_many(std::vector<T>& out, Count max_items) {
    UniqueLock lock(mutex_);
    Count taken = 0;
    while (taken < max_items && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++taken;
    }
    return taken;
  }

  /// Stops admission (try_push fails from now on) and wakes all blocked
  /// consumers. Idempotent. Queued items remain poppable.
  void close() {
    {
      UniqueLock lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] Count depth() const {
    UniqueLock lock(mutex_);
    return static_cast<Count>(items_.size());
  }

  [[nodiscard]] Count max_depth() const { return max_depth_; }

  [[nodiscard]] bool closed() const {
    UniqueLock lock(mutex_);
    return closed_;
  }

 private:
  const Count max_depth_;
  mutable Mutex mutex_;
  std::condition_variable_any ready_;
  std::deque<T> items_ MEMPART_GUARDED_BY(mutex_);
  bool closed_ MEMPART_GUARDED_BY(mutex_) = false;
};

}  // namespace mempart::serve
