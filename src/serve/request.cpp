#include "serve/request.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "common/errors.h"
#include "obs/trace.h"

namespace mempart::serve {
namespace {

/// Recursive-descent parser over the serve request grammar — the
/// check::CheckConfig schema plus `id`/`tenant`. A separate parser (rather
/// than loosening CheckConfig::from_json) because the repro-file parser
/// rejecting unknown keys is a feature there: a fuzz repro with a stray key
/// is corruption, while a serve request with serving tags is the contract.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        char e = text_[pos_++];
        switch (e) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          default: out.push_back(e);
        }
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  std::int64_t parse_int() {
    skip_ws();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) fail("expected integer");
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(text_.c_str() + start, &end, 10);
    if (errno == ERANGE) fail("integer out of 64-bit range");
    return v;
  }

  std::vector<std::int64_t> parse_int_array() {
    std::vector<std::int64_t> out;
    expect('[');
    if (try_consume(']')) return out;
    do {
      out.push_back(parse_int());
    } while (try_consume(','));
    expect(']');
    return out;
  }

  void expect_end() {
    skip_ws();
    if (pos_ < text_.size()) fail("trailing content after request");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[noreturn]] void fail(const std::string& why) {
    std::ostringstream os;
    os << "serve request: " << why << " at byte " << pos_;
    throw InvalidArgument(os.str());
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

/// Opens the response object and emits whichever tag fields the request
/// carried; empty tags are omitted entirely so untagged pipelines don't
/// drag `"id": ""` noise through every line.
void append_tags(std::ostringstream& os, const ServeRequest& request) {
  os << '{';
  if (!request.id.empty()) {
    os << "\"id\": \"" << obs::json_escape(request.id) << "\", ";
  }
  if (!request.tenant.empty()) {
    os << "\"tenant\": \"" << obs::json_escape(request.tenant) << "\", ";
  }
}

}  // namespace

bool parse_request(const std::string& line, ServeRequest& out,
                   std::string* error) {
  out = ServeRequest{};
  std::vector<NdIndex> offsets;
  std::vector<Count> shape;
  try {
    Parser p(line);
    p.expect('{');
    if (!p.try_consume('}')) {
      do {
        const std::string key = p.parse_string();
        p.expect(':');
        if (key == "id") {
          out.id = p.parse_string();
        } else if (key == "tenant") {
          out.tenant = p.parse_string();
        } else if (key == "offsets") {
          p.expect('[');
          if (!p.try_consume(']')) {
            do {
              const auto coords = p.parse_int_array();
              offsets.emplace_back(coords.begin(), coords.end());
            } while (p.try_consume(','));
            p.expect(']');
          }
        } else if (key == "shape") {
          const auto extents = p.parse_int_array();
          shape.assign(extents.begin(), extents.end());
        } else if (key == "max_banks") {
          out.request.max_banks = p.parse_int();
        } else if (key == "bank_bandwidth") {
          out.request.bank_bandwidth = p.parse_int();
        } else if (key == "strategy") {
          const std::string v = p.parse_string();
          if (v == "fast_fold") {
            out.request.strategy = ConstraintStrategy::kFastFold;
          } else if (v == "same_size") {
            out.request.strategy = ConstraintStrategy::kSameSize;
          } else {
            p.fail("unknown strategy '" + v + "'");
          }
        } else if (key == "tail") {
          const std::string v = p.parse_string();
          if (v == "padded") {
            out.request.tail = TailPolicy::kPadded;
          } else if (v == "compact") {
            out.request.tail = TailPolicy::kCompact;
          } else {
            p.fail("unknown tail policy '" + v + "'");
          }
        } else if (key == "seed") {
          p.parse_int();  // provenance only; accepted and ignored
        } else if (key == "note") {
          p.parse_string();  // provenance only; accepted and ignored
        } else {
          p.fail("unknown key '" + key + "'");
        }
      } while (p.try_consume(','));
      p.expect('}');
    }
    p.expect_end();
    // Pattern/NdShape validate their own invariants (duplicate offsets,
    // ragged ranks, zero extents) with solver-grade diagnostics.
    out.request.pattern = Pattern(offsets);
    if (!shape.empty()) out.request.array_shape = NdShape(shape);
  } catch (const Error& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
  if (error != nullptr) error->clear();
  return true;
}

std::string ok_response(const ServeRequest& request,
                        const PartitionSolution& solution) {
  std::ostringstream os;
  append_tags(os, request);
  os << "\"ok\": true, \"num_banks\": " << solution.num_banks()
     << ", \"delta_ii\": " << solution.delta_ii()
     << ", \"fold_factor\": " << solution.constraint.fold_factor
     << ", \"alpha\": [";
  const std::vector<Count>& alpha = solution.transform.alpha();
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    os << (i ? ", " : "") << alpha[i];
  }
  os << "], \"pattern_banks\": [";
  for (std::size_t i = 0; i < solution.pattern_banks.size(); ++i) {
    os << (i ? ", " : "") << solution.pattern_banks[i];
  }
  os << "]";
  if (solution.mapping.has_value()) {
    os << ", \"storage_overhead\": " << solution.storage_overhead_elements();
  }
  os << "}";
  return os.str();
}

std::string error_response(const ServeRequest& request,
                           const std::string& error) {
  std::ostringstream os;
  append_tags(os, request);
  os << "\"ok\": false, \"error\": \"" << obs::json_escape(error) << "\"}";
  return os.str();
}

std::string shed_response(const ServeRequest& request,
                          const std::string& reason) {
  std::ostringstream os;
  append_tags(os, request);
  os << "\"ok\": false, \"shed\": true, \"error\": \""
     << obs::json_escape(reason) << "\"}";
  return os.str();
}

}  // namespace mempart::serve
