
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline/classical_test.cpp" "tests/CMakeFiles/mempart_tests.dir/baseline/classical_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/baseline/classical_test.cpp.o.d"
  "/root/repo/tests/baseline/duplication_test.cpp" "tests/CMakeFiles/mempart_tests.dir/baseline/duplication_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/baseline/duplication_test.cpp.o.d"
  "/root/repo/tests/baseline/ltb_mapping_test.cpp" "tests/CMakeFiles/mempart_tests.dir/baseline/ltb_mapping_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/baseline/ltb_mapping_test.cpp.o.d"
  "/root/repo/tests/baseline/ltb_test.cpp" "tests/CMakeFiles/mempart_tests.dir/baseline/ltb_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/baseline/ltb_test.cpp.o.d"
  "/root/repo/tests/common/args_test.cpp" "tests/CMakeFiles/mempart_tests.dir/common/args_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/common/args_test.cpp.o.d"
  "/root/repo/tests/common/math_util_test.cpp" "tests/CMakeFiles/mempart_tests.dir/common/math_util_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/common/math_util_test.cpp.o.d"
  "/root/repo/tests/common/nd_test.cpp" "tests/CMakeFiles/mempart_tests.dir/common/nd_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/common/nd_test.cpp.o.d"
  "/root/repo/tests/common/op_counter_test.cpp" "tests/CMakeFiles/mempart_tests.dir/common/op_counter_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/common/op_counter_test.cpp.o.d"
  "/root/repo/tests/common/random_test.cpp" "tests/CMakeFiles/mempart_tests.dir/common/random_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/common/random_test.cpp.o.d"
  "/root/repo/tests/common/table_test.cpp" "tests/CMakeFiles/mempart_tests.dir/common/table_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/common/table_test.cpp.o.d"
  "/root/repo/tests/core/advisor_test.cpp" "tests/CMakeFiles/mempart_tests.dir/core/advisor_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/core/advisor_test.cpp.o.d"
  "/root/repo/tests/core/bandwidth_test.cpp" "tests/CMakeFiles/mempart_tests.dir/core/bandwidth_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/core/bandwidth_test.cpp.o.d"
  "/root/repo/tests/core/bank_constraint_test.cpp" "tests/CMakeFiles/mempart_tests.dir/core/bank_constraint_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/core/bank_constraint_test.cpp.o.d"
  "/root/repo/tests/core/bank_mapping_test.cpp" "tests/CMakeFiles/mempart_tests.dir/core/bank_mapping_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/core/bank_mapping_test.cpp.o.d"
  "/root/repo/tests/core/bank_search_test.cpp" "tests/CMakeFiles/mempart_tests.dir/core/bank_search_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/core/bank_search_test.cpp.o.d"
  "/root/repo/tests/core/delta_ii_test.cpp" "tests/CMakeFiles/mempart_tests.dir/core/delta_ii_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/core/delta_ii_test.cpp.o.d"
  "/root/repo/tests/core/linear_transform_test.cpp" "tests/CMakeFiles/mempart_tests.dir/core/linear_transform_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/core/linear_transform_test.cpp.o.d"
  "/root/repo/tests/core/multi_test.cpp" "tests/CMakeFiles/mempart_tests.dir/core/multi_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/core/multi_test.cpp.o.d"
  "/root/repo/tests/core/overhead_test.cpp" "tests/CMakeFiles/mempart_tests.dir/core/overhead_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/core/overhead_test.cpp.o.d"
  "/root/repo/tests/core/partitioner_test.cpp" "tests/CMakeFiles/mempart_tests.dir/core/partitioner_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/core/partitioner_test.cpp.o.d"
  "/root/repo/tests/core/property_test.cpp" "tests/CMakeFiles/mempart_tests.dir/core/property_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/core/property_test.cpp.o.d"
  "/root/repo/tests/core/solution_io_test.cpp" "tests/CMakeFiles/mempart_tests.dir/core/solution_io_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/core/solution_io_test.cpp.o.d"
  "/root/repo/tests/core/verify_test.cpp" "tests/CMakeFiles/mempart_tests.dir/core/verify_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/core/verify_test.cpp.o.d"
  "/root/repo/tests/hw/addr_gen_test.cpp" "tests/CMakeFiles/mempart_tests.dir/hw/addr_gen_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/hw/addr_gen_test.cpp.o.d"
  "/root/repo/tests/hw/bram_packing_test.cpp" "tests/CMakeFiles/mempart_tests.dir/hw/bram_packing_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/hw/bram_packing_test.cpp.o.d"
  "/root/repo/tests/hw/bram_test.cpp" "tests/CMakeFiles/mempart_tests.dir/hw/bram_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/hw/bram_test.cpp.o.d"
  "/root/repo/tests/hw/energy_test.cpp" "tests/CMakeFiles/mempart_tests.dir/hw/energy_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/hw/energy_test.cpp.o.d"
  "/root/repo/tests/hw/resolutions_test.cpp" "tests/CMakeFiles/mempart_tests.dir/hw/resolutions_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/hw/resolutions_test.cpp.o.d"
  "/root/repo/tests/hw/rtl_gen_test.cpp" "tests/CMakeFiles/mempart_tests.dir/hw/rtl_gen_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/hw/rtl_gen_test.cpp.o.d"
  "/root/repo/tests/img/convolve_test.cpp" "tests/CMakeFiles/mempart_tests.dir/img/convolve_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/img/convolve_test.cpp.o.d"
  "/root/repo/tests/img/edge_ops_test.cpp" "tests/CMakeFiles/mempart_tests.dir/img/edge_ops_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/img/edge_ops_test.cpp.o.d"
  "/root/repo/tests/img/image_test.cpp" "tests/CMakeFiles/mempart_tests.dir/img/image_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/img/image_test.cpp.o.d"
  "/root/repo/tests/img/morphology_test.cpp" "tests/CMakeFiles/mempart_tests.dir/img/morphology_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/img/morphology_test.cpp.o.d"
  "/root/repo/tests/img/pgm_io_test.cpp" "tests/CMakeFiles/mempart_tests.dir/img/pgm_io_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/img/pgm_io_test.cpp.o.d"
  "/root/repo/tests/img/synthetic_test.cpp" "tests/CMakeFiles/mempart_tests.dir/img/synthetic_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/img/synthetic_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/mempart_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/paper_numbers_test.cpp" "tests/CMakeFiles/mempart_tests.dir/integration/paper_numbers_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/integration/paper_numbers_test.cpp.o.d"
  "/root/repo/tests/integration/random_pipeline_test.cpp" "tests/CMakeFiles/mempart_tests.dir/integration/random_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/integration/random_pipeline_test.cpp.o.d"
  "/root/repo/tests/integration/rank_sweep_test.cpp" "tests/CMakeFiles/mempart_tests.dir/integration/rank_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/integration/rank_sweep_test.cpp.o.d"
  "/root/repo/tests/loopnest/loop_nest_test.cpp" "tests/CMakeFiles/mempart_tests.dir/loopnest/loop_nest_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/loopnest/loop_nest_test.cpp.o.d"
  "/root/repo/tests/loopnest/pipeline_test.cpp" "tests/CMakeFiles/mempart_tests.dir/loopnest/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/loopnest/pipeline_test.cpp.o.d"
  "/root/repo/tests/loopnest/schedule_test.cpp" "tests/CMakeFiles/mempart_tests.dir/loopnest/schedule_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/loopnest/schedule_test.cpp.o.d"
  "/root/repo/tests/loopnest/stencil_parser_test.cpp" "tests/CMakeFiles/mempart_tests.dir/loopnest/stencil_parser_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/loopnest/stencil_parser_test.cpp.o.d"
  "/root/repo/tests/loopnest/stencil_program_test.cpp" "tests/CMakeFiles/mempart_tests.dir/loopnest/stencil_program_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/loopnest/stencil_program_test.cpp.o.d"
  "/root/repo/tests/loopnest/unroll_test.cpp" "tests/CMakeFiles/mempart_tests.dir/loopnest/unroll_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/loopnest/unroll_test.cpp.o.d"
  "/root/repo/tests/pattern/kernel_test.cpp" "tests/CMakeFiles/mempart_tests.dir/pattern/kernel_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/pattern/kernel_test.cpp.o.d"
  "/root/repo/tests/pattern/pattern_io_test.cpp" "tests/CMakeFiles/mempart_tests.dir/pattern/pattern_io_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/pattern/pattern_io_test.cpp.o.d"
  "/root/repo/tests/pattern/pattern_library_test.cpp" "tests/CMakeFiles/mempart_tests.dir/pattern/pattern_library_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/pattern/pattern_library_test.cpp.o.d"
  "/root/repo/tests/pattern/pattern_test.cpp" "tests/CMakeFiles/mempart_tests.dir/pattern/pattern_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/pattern/pattern_test.cpp.o.d"
  "/root/repo/tests/pattern/transforms_test.cpp" "tests/CMakeFiles/mempart_tests.dir/pattern/transforms_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/pattern/transforms_test.cpp.o.d"
  "/root/repo/tests/sim/access_engine_test.cpp" "tests/CMakeFiles/mempart_tests.dir/sim/access_engine_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/sim/access_engine_test.cpp.o.d"
  "/root/repo/tests/sim/banked_array_test.cpp" "tests/CMakeFiles/mempart_tests.dir/sim/banked_array_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/sim/banked_array_test.cpp.o.d"
  "/root/repo/tests/sim/banked_memory_test.cpp" "tests/CMakeFiles/mempart_tests.dir/sim/banked_memory_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/sim/banked_memory_test.cpp.o.d"
  "/root/repo/tests/sim/trace_test.cpp" "tests/CMakeFiles/mempart_tests.dir/sim/trace_test.cpp.o" "gcc" "tests/CMakeFiles/mempart_tests.dir/sim/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mempart_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/mempart_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mempart_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/mempart_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mempart_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mempart_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/loopnest/CMakeFiles/mempart_loopnest.dir/DependInfo.cmake"
  "/root/repo/build/src/img/CMakeFiles/mempart_img.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
