# Empty dependencies file for mempart_tests.
# This may be replaced when dependencies are built.
