file(REMOVE_RECURSE
  "CMakeFiles/mempart.dir/mempart_cli.cpp.o"
  "CMakeFiles/mempart.dir/mempart_cli.cpp.o.d"
  "mempart"
  "mempart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mempart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
