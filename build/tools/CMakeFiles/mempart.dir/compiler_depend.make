# Empty compiler generated dependencies file for mempart.
# This may be replaced when dependencies are built.
