file(REMOVE_RECURSE
  "CMakeFiles/bank_constrained_design.dir/bank_constrained_design.cpp.o"
  "CMakeFiles/bank_constrained_design.dir/bank_constrained_design.cpp.o.d"
  "bank_constrained_design"
  "bank_constrained_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_constrained_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
