# Empty dependencies file for bank_constrained_design.
# This may be replaced when dependencies are built.
