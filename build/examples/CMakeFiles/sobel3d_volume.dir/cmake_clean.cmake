file(REMOVE_RECURSE
  "CMakeFiles/sobel3d_volume.dir/sobel3d_volume.cpp.o"
  "CMakeFiles/sobel3d_volume.dir/sobel3d_volume.cpp.o.d"
  "sobel3d_volume"
  "sobel3d_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sobel3d_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
