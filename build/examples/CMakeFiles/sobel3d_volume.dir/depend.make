# Empty dependencies file for sobel3d_volume.
# This may be replaced when dependencies are built.
