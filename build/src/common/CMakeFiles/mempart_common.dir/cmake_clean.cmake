file(REMOVE_RECURSE
  "CMakeFiles/mempart_common.dir/args.cpp.o"
  "CMakeFiles/mempart_common.dir/args.cpp.o.d"
  "CMakeFiles/mempart_common.dir/errors.cpp.o"
  "CMakeFiles/mempart_common.dir/errors.cpp.o.d"
  "CMakeFiles/mempart_common.dir/math_util.cpp.o"
  "CMakeFiles/mempart_common.dir/math_util.cpp.o.d"
  "CMakeFiles/mempart_common.dir/nd.cpp.o"
  "CMakeFiles/mempart_common.dir/nd.cpp.o.d"
  "CMakeFiles/mempart_common.dir/op_counter.cpp.o"
  "CMakeFiles/mempart_common.dir/op_counter.cpp.o.d"
  "CMakeFiles/mempart_common.dir/random.cpp.o"
  "CMakeFiles/mempart_common.dir/random.cpp.o.d"
  "CMakeFiles/mempart_common.dir/table.cpp.o"
  "CMakeFiles/mempart_common.dir/table.cpp.o.d"
  "libmempart_common.a"
  "libmempart_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mempart_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
