# Empty dependencies file for mempart_common.
# This may be replaced when dependencies are built.
