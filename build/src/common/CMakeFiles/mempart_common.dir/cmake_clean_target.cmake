file(REMOVE_RECURSE
  "libmempart_common.a"
)
