file(REMOVE_RECURSE
  "libmempart_core.a"
)
