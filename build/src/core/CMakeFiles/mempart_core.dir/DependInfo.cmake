
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cpp" "src/core/CMakeFiles/mempart_core.dir/advisor.cpp.o" "gcc" "src/core/CMakeFiles/mempart_core.dir/advisor.cpp.o.d"
  "/root/repo/src/core/bank_constraint.cpp" "src/core/CMakeFiles/mempart_core.dir/bank_constraint.cpp.o" "gcc" "src/core/CMakeFiles/mempart_core.dir/bank_constraint.cpp.o.d"
  "/root/repo/src/core/bank_mapping.cpp" "src/core/CMakeFiles/mempart_core.dir/bank_mapping.cpp.o" "gcc" "src/core/CMakeFiles/mempart_core.dir/bank_mapping.cpp.o.d"
  "/root/repo/src/core/bank_search.cpp" "src/core/CMakeFiles/mempart_core.dir/bank_search.cpp.o" "gcc" "src/core/CMakeFiles/mempart_core.dir/bank_search.cpp.o.d"
  "/root/repo/src/core/delta_ii.cpp" "src/core/CMakeFiles/mempart_core.dir/delta_ii.cpp.o" "gcc" "src/core/CMakeFiles/mempart_core.dir/delta_ii.cpp.o.d"
  "/root/repo/src/core/linear_transform.cpp" "src/core/CMakeFiles/mempart_core.dir/linear_transform.cpp.o" "gcc" "src/core/CMakeFiles/mempart_core.dir/linear_transform.cpp.o.d"
  "/root/repo/src/core/multi.cpp" "src/core/CMakeFiles/mempart_core.dir/multi.cpp.o" "gcc" "src/core/CMakeFiles/mempart_core.dir/multi.cpp.o.d"
  "/root/repo/src/core/overhead.cpp" "src/core/CMakeFiles/mempart_core.dir/overhead.cpp.o" "gcc" "src/core/CMakeFiles/mempart_core.dir/overhead.cpp.o.d"
  "/root/repo/src/core/partitioner.cpp" "src/core/CMakeFiles/mempart_core.dir/partitioner.cpp.o" "gcc" "src/core/CMakeFiles/mempart_core.dir/partitioner.cpp.o.d"
  "/root/repo/src/core/solution_io.cpp" "src/core/CMakeFiles/mempart_core.dir/solution_io.cpp.o" "gcc" "src/core/CMakeFiles/mempart_core.dir/solution_io.cpp.o.d"
  "/root/repo/src/core/verify.cpp" "src/core/CMakeFiles/mempart_core.dir/verify.cpp.o" "gcc" "src/core/CMakeFiles/mempart_core.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mempart_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/mempart_pattern.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
