file(REMOVE_RECURSE
  "CMakeFiles/mempart_core.dir/advisor.cpp.o"
  "CMakeFiles/mempart_core.dir/advisor.cpp.o.d"
  "CMakeFiles/mempart_core.dir/bank_constraint.cpp.o"
  "CMakeFiles/mempart_core.dir/bank_constraint.cpp.o.d"
  "CMakeFiles/mempart_core.dir/bank_mapping.cpp.o"
  "CMakeFiles/mempart_core.dir/bank_mapping.cpp.o.d"
  "CMakeFiles/mempart_core.dir/bank_search.cpp.o"
  "CMakeFiles/mempart_core.dir/bank_search.cpp.o.d"
  "CMakeFiles/mempart_core.dir/delta_ii.cpp.o"
  "CMakeFiles/mempart_core.dir/delta_ii.cpp.o.d"
  "CMakeFiles/mempart_core.dir/linear_transform.cpp.o"
  "CMakeFiles/mempart_core.dir/linear_transform.cpp.o.d"
  "CMakeFiles/mempart_core.dir/multi.cpp.o"
  "CMakeFiles/mempart_core.dir/multi.cpp.o.d"
  "CMakeFiles/mempart_core.dir/overhead.cpp.o"
  "CMakeFiles/mempart_core.dir/overhead.cpp.o.d"
  "CMakeFiles/mempart_core.dir/partitioner.cpp.o"
  "CMakeFiles/mempart_core.dir/partitioner.cpp.o.d"
  "CMakeFiles/mempart_core.dir/solution_io.cpp.o"
  "CMakeFiles/mempart_core.dir/solution_io.cpp.o.d"
  "CMakeFiles/mempart_core.dir/verify.cpp.o"
  "CMakeFiles/mempart_core.dir/verify.cpp.o.d"
  "libmempart_core.a"
  "libmempart_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mempart_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
