# Empty dependencies file for mempart_core.
# This may be replaced when dependencies are built.
