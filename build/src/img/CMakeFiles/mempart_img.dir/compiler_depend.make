# Empty compiler generated dependencies file for mempart_img.
# This may be replaced when dependencies are built.
