file(REMOVE_RECURSE
  "libmempart_img.a"
)
