
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/img/banked_convolve.cpp" "src/img/CMakeFiles/mempart_img.dir/banked_convolve.cpp.o" "gcc" "src/img/CMakeFiles/mempart_img.dir/banked_convolve.cpp.o.d"
  "/root/repo/src/img/convolve.cpp" "src/img/CMakeFiles/mempart_img.dir/convolve.cpp.o" "gcc" "src/img/CMakeFiles/mempart_img.dir/convolve.cpp.o.d"
  "/root/repo/src/img/edge_ops.cpp" "src/img/CMakeFiles/mempart_img.dir/edge_ops.cpp.o" "gcc" "src/img/CMakeFiles/mempart_img.dir/edge_ops.cpp.o.d"
  "/root/repo/src/img/image.cpp" "src/img/CMakeFiles/mempart_img.dir/image.cpp.o" "gcc" "src/img/CMakeFiles/mempart_img.dir/image.cpp.o.d"
  "/root/repo/src/img/morphology.cpp" "src/img/CMakeFiles/mempart_img.dir/morphology.cpp.o" "gcc" "src/img/CMakeFiles/mempart_img.dir/morphology.cpp.o.d"
  "/root/repo/src/img/pgm_io.cpp" "src/img/CMakeFiles/mempart_img.dir/pgm_io.cpp.o" "gcc" "src/img/CMakeFiles/mempart_img.dir/pgm_io.cpp.o.d"
  "/root/repo/src/img/synthetic.cpp" "src/img/CMakeFiles/mempart_img.dir/synthetic.cpp.o" "gcc" "src/img/CMakeFiles/mempart_img.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mempart_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/mempart_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mempart_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/loopnest/CMakeFiles/mempart_loopnest.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/mempart_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mempart_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
