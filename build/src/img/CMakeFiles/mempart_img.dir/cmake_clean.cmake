file(REMOVE_RECURSE
  "CMakeFiles/mempart_img.dir/banked_convolve.cpp.o"
  "CMakeFiles/mempart_img.dir/banked_convolve.cpp.o.d"
  "CMakeFiles/mempart_img.dir/convolve.cpp.o"
  "CMakeFiles/mempart_img.dir/convolve.cpp.o.d"
  "CMakeFiles/mempart_img.dir/edge_ops.cpp.o"
  "CMakeFiles/mempart_img.dir/edge_ops.cpp.o.d"
  "CMakeFiles/mempart_img.dir/image.cpp.o"
  "CMakeFiles/mempart_img.dir/image.cpp.o.d"
  "CMakeFiles/mempart_img.dir/morphology.cpp.o"
  "CMakeFiles/mempart_img.dir/morphology.cpp.o.d"
  "CMakeFiles/mempart_img.dir/pgm_io.cpp.o"
  "CMakeFiles/mempart_img.dir/pgm_io.cpp.o.d"
  "CMakeFiles/mempart_img.dir/synthetic.cpp.o"
  "CMakeFiles/mempart_img.dir/synthetic.cpp.o.d"
  "libmempart_img.a"
  "libmempart_img.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mempart_img.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
