file(REMOVE_RECURSE
  "CMakeFiles/mempart_baseline.dir/classical.cpp.o"
  "CMakeFiles/mempart_baseline.dir/classical.cpp.o.d"
  "CMakeFiles/mempart_baseline.dir/duplication.cpp.o"
  "CMakeFiles/mempart_baseline.dir/duplication.cpp.o.d"
  "CMakeFiles/mempart_baseline.dir/ltb.cpp.o"
  "CMakeFiles/mempart_baseline.dir/ltb.cpp.o.d"
  "CMakeFiles/mempart_baseline.dir/ltb_mapping.cpp.o"
  "CMakeFiles/mempart_baseline.dir/ltb_mapping.cpp.o.d"
  "libmempart_baseline.a"
  "libmempart_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mempart_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
