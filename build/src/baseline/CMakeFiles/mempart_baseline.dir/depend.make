# Empty dependencies file for mempart_baseline.
# This may be replaced when dependencies are built.
