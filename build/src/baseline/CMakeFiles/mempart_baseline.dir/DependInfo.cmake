
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/classical.cpp" "src/baseline/CMakeFiles/mempart_baseline.dir/classical.cpp.o" "gcc" "src/baseline/CMakeFiles/mempart_baseline.dir/classical.cpp.o.d"
  "/root/repo/src/baseline/duplication.cpp" "src/baseline/CMakeFiles/mempart_baseline.dir/duplication.cpp.o" "gcc" "src/baseline/CMakeFiles/mempart_baseline.dir/duplication.cpp.o.d"
  "/root/repo/src/baseline/ltb.cpp" "src/baseline/CMakeFiles/mempart_baseline.dir/ltb.cpp.o" "gcc" "src/baseline/CMakeFiles/mempart_baseline.dir/ltb.cpp.o.d"
  "/root/repo/src/baseline/ltb_mapping.cpp" "src/baseline/CMakeFiles/mempart_baseline.dir/ltb_mapping.cpp.o" "gcc" "src/baseline/CMakeFiles/mempart_baseline.dir/ltb_mapping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mempart_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/mempart_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mempart_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
