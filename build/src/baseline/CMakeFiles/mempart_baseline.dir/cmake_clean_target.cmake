file(REMOVE_RECURSE
  "libmempart_baseline.a"
)
