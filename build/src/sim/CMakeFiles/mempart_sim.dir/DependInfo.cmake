
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/access_engine.cpp" "src/sim/CMakeFiles/mempart_sim.dir/access_engine.cpp.o" "gcc" "src/sim/CMakeFiles/mempart_sim.dir/access_engine.cpp.o.d"
  "/root/repo/src/sim/address_map.cpp" "src/sim/CMakeFiles/mempart_sim.dir/address_map.cpp.o" "gcc" "src/sim/CMakeFiles/mempart_sim.dir/address_map.cpp.o.d"
  "/root/repo/src/sim/banked_array.cpp" "src/sim/CMakeFiles/mempart_sim.dir/banked_array.cpp.o" "gcc" "src/sim/CMakeFiles/mempart_sim.dir/banked_array.cpp.o.d"
  "/root/repo/src/sim/banked_memory.cpp" "src/sim/CMakeFiles/mempart_sim.dir/banked_memory.cpp.o" "gcc" "src/sim/CMakeFiles/mempart_sim.dir/banked_memory.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/mempart_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/mempart_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mempart_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mempart_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/mempart_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/mempart_pattern.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
