# Empty compiler generated dependencies file for mempart_sim.
# This may be replaced when dependencies are built.
