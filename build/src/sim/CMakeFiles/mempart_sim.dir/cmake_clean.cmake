file(REMOVE_RECURSE
  "CMakeFiles/mempart_sim.dir/access_engine.cpp.o"
  "CMakeFiles/mempart_sim.dir/access_engine.cpp.o.d"
  "CMakeFiles/mempart_sim.dir/address_map.cpp.o"
  "CMakeFiles/mempart_sim.dir/address_map.cpp.o.d"
  "CMakeFiles/mempart_sim.dir/banked_array.cpp.o"
  "CMakeFiles/mempart_sim.dir/banked_array.cpp.o.d"
  "CMakeFiles/mempart_sim.dir/banked_memory.cpp.o"
  "CMakeFiles/mempart_sim.dir/banked_memory.cpp.o.d"
  "CMakeFiles/mempart_sim.dir/trace.cpp.o"
  "CMakeFiles/mempart_sim.dir/trace.cpp.o.d"
  "libmempart_sim.a"
  "libmempart_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mempart_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
