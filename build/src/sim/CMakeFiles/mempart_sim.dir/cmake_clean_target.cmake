file(REMOVE_RECURSE
  "libmempart_sim.a"
)
