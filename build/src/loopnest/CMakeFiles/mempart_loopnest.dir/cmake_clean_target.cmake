file(REMOVE_RECURSE
  "libmempart_loopnest.a"
)
