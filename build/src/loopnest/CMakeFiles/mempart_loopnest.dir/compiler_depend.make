# Empty compiler generated dependencies file for mempart_loopnest.
# This may be replaced when dependencies are built.
