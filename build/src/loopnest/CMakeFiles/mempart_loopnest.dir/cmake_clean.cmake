file(REMOVE_RECURSE
  "CMakeFiles/mempart_loopnest.dir/loop_nest.cpp.o"
  "CMakeFiles/mempart_loopnest.dir/loop_nest.cpp.o.d"
  "CMakeFiles/mempart_loopnest.dir/pipeline.cpp.o"
  "CMakeFiles/mempart_loopnest.dir/pipeline.cpp.o.d"
  "CMakeFiles/mempart_loopnest.dir/schedule.cpp.o"
  "CMakeFiles/mempart_loopnest.dir/schedule.cpp.o.d"
  "CMakeFiles/mempart_loopnest.dir/stencil_parser.cpp.o"
  "CMakeFiles/mempart_loopnest.dir/stencil_parser.cpp.o.d"
  "CMakeFiles/mempart_loopnest.dir/stencil_program.cpp.o"
  "CMakeFiles/mempart_loopnest.dir/stencil_program.cpp.o.d"
  "libmempart_loopnest.a"
  "libmempart_loopnest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mempart_loopnest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
