
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/loopnest/loop_nest.cpp" "src/loopnest/CMakeFiles/mempart_loopnest.dir/loop_nest.cpp.o" "gcc" "src/loopnest/CMakeFiles/mempart_loopnest.dir/loop_nest.cpp.o.d"
  "/root/repo/src/loopnest/pipeline.cpp" "src/loopnest/CMakeFiles/mempart_loopnest.dir/pipeline.cpp.o" "gcc" "src/loopnest/CMakeFiles/mempart_loopnest.dir/pipeline.cpp.o.d"
  "/root/repo/src/loopnest/schedule.cpp" "src/loopnest/CMakeFiles/mempart_loopnest.dir/schedule.cpp.o" "gcc" "src/loopnest/CMakeFiles/mempart_loopnest.dir/schedule.cpp.o.d"
  "/root/repo/src/loopnest/stencil_parser.cpp" "src/loopnest/CMakeFiles/mempart_loopnest.dir/stencil_parser.cpp.o" "gcc" "src/loopnest/CMakeFiles/mempart_loopnest.dir/stencil_parser.cpp.o.d"
  "/root/repo/src/loopnest/stencil_program.cpp" "src/loopnest/CMakeFiles/mempart_loopnest.dir/stencil_program.cpp.o" "gcc" "src/loopnest/CMakeFiles/mempart_loopnest.dir/stencil_program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mempart_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/mempart_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mempart_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/mempart_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mempart_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
