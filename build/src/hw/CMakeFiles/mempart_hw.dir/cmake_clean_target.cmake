file(REMOVE_RECURSE
  "libmempart_hw.a"
)
