# Empty dependencies file for mempart_hw.
# This may be replaced when dependencies are built.
