file(REMOVE_RECURSE
  "CMakeFiles/mempart_hw.dir/addr_gen.cpp.o"
  "CMakeFiles/mempart_hw.dir/addr_gen.cpp.o.d"
  "CMakeFiles/mempart_hw.dir/bram.cpp.o"
  "CMakeFiles/mempart_hw.dir/bram.cpp.o.d"
  "CMakeFiles/mempart_hw.dir/bram_packing.cpp.o"
  "CMakeFiles/mempart_hw.dir/bram_packing.cpp.o.d"
  "CMakeFiles/mempart_hw.dir/energy.cpp.o"
  "CMakeFiles/mempart_hw.dir/energy.cpp.o.d"
  "CMakeFiles/mempart_hw.dir/resolutions.cpp.o"
  "CMakeFiles/mempart_hw.dir/resolutions.cpp.o.d"
  "CMakeFiles/mempart_hw.dir/rtl_gen.cpp.o"
  "CMakeFiles/mempart_hw.dir/rtl_gen.cpp.o.d"
  "libmempart_hw.a"
  "libmempart_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mempart_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
