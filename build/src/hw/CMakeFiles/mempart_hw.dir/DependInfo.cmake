
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/addr_gen.cpp" "src/hw/CMakeFiles/mempart_hw.dir/addr_gen.cpp.o" "gcc" "src/hw/CMakeFiles/mempart_hw.dir/addr_gen.cpp.o.d"
  "/root/repo/src/hw/bram.cpp" "src/hw/CMakeFiles/mempart_hw.dir/bram.cpp.o" "gcc" "src/hw/CMakeFiles/mempart_hw.dir/bram.cpp.o.d"
  "/root/repo/src/hw/bram_packing.cpp" "src/hw/CMakeFiles/mempart_hw.dir/bram_packing.cpp.o" "gcc" "src/hw/CMakeFiles/mempart_hw.dir/bram_packing.cpp.o.d"
  "/root/repo/src/hw/energy.cpp" "src/hw/CMakeFiles/mempart_hw.dir/energy.cpp.o" "gcc" "src/hw/CMakeFiles/mempart_hw.dir/energy.cpp.o.d"
  "/root/repo/src/hw/resolutions.cpp" "src/hw/CMakeFiles/mempart_hw.dir/resolutions.cpp.o" "gcc" "src/hw/CMakeFiles/mempart_hw.dir/resolutions.cpp.o.d"
  "/root/repo/src/hw/rtl_gen.cpp" "src/hw/CMakeFiles/mempart_hw.dir/rtl_gen.cpp.o" "gcc" "src/hw/CMakeFiles/mempart_hw.dir/rtl_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mempart_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mempart_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/mempart_pattern.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
