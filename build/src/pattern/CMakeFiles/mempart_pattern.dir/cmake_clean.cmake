file(REMOVE_RECURSE
  "CMakeFiles/mempart_pattern.dir/kernel.cpp.o"
  "CMakeFiles/mempart_pattern.dir/kernel.cpp.o.d"
  "CMakeFiles/mempart_pattern.dir/pattern.cpp.o"
  "CMakeFiles/mempart_pattern.dir/pattern.cpp.o.d"
  "CMakeFiles/mempart_pattern.dir/pattern_io.cpp.o"
  "CMakeFiles/mempart_pattern.dir/pattern_io.cpp.o.d"
  "CMakeFiles/mempart_pattern.dir/pattern_library.cpp.o"
  "CMakeFiles/mempart_pattern.dir/pattern_library.cpp.o.d"
  "CMakeFiles/mempart_pattern.dir/transforms.cpp.o"
  "CMakeFiles/mempart_pattern.dir/transforms.cpp.o.d"
  "libmempart_pattern.a"
  "libmempart_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mempart_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
