file(REMOVE_RECURSE
  "libmempart_pattern.a"
)
