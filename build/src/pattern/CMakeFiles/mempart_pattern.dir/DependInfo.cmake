
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pattern/kernel.cpp" "src/pattern/CMakeFiles/mempart_pattern.dir/kernel.cpp.o" "gcc" "src/pattern/CMakeFiles/mempart_pattern.dir/kernel.cpp.o.d"
  "/root/repo/src/pattern/pattern.cpp" "src/pattern/CMakeFiles/mempart_pattern.dir/pattern.cpp.o" "gcc" "src/pattern/CMakeFiles/mempart_pattern.dir/pattern.cpp.o.d"
  "/root/repo/src/pattern/pattern_io.cpp" "src/pattern/CMakeFiles/mempart_pattern.dir/pattern_io.cpp.o" "gcc" "src/pattern/CMakeFiles/mempart_pattern.dir/pattern_io.cpp.o.d"
  "/root/repo/src/pattern/pattern_library.cpp" "src/pattern/CMakeFiles/mempart_pattern.dir/pattern_library.cpp.o" "gcc" "src/pattern/CMakeFiles/mempart_pattern.dir/pattern_library.cpp.o.d"
  "/root/repo/src/pattern/transforms.cpp" "src/pattern/CMakeFiles/mempart_pattern.dir/transforms.cpp.o" "gcc" "src/pattern/CMakeFiles/mempart_pattern.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mempart_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
