# Empty compiler generated dependencies file for mempart_pattern.
# This may be replaced when dependencies are built.
