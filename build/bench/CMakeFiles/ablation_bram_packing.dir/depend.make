# Empty dependencies file for ablation_bram_packing.
# This may be replaced when dependencies are built.
