file(REMOVE_RECURSE
  "CMakeFiles/ablation_bram_packing.dir/ablation_bram_packing.cpp.o"
  "CMakeFiles/ablation_bram_packing.dir/ablation_bram_packing.cpp.o.d"
  "ablation_bram_packing"
  "ablation_bram_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bram_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
