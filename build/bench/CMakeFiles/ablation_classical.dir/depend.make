# Empty dependencies file for ablation_classical.
# This may be replaced when dependencies are built.
