file(REMOVE_RECURSE
  "CMakeFiles/ablation_classical.dir/ablation_classical.cpp.o"
  "CMakeFiles/ablation_classical.dir/ablation_classical.cpp.o.d"
  "ablation_classical"
  "ablation_classical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_classical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
