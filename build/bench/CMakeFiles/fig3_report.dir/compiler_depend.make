# Empty compiler generated dependencies file for fig3_report.
# This may be replaced when dependencies are built.
