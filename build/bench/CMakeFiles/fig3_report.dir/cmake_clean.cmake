file(REMOVE_RECURSE
  "CMakeFiles/fig3_report.dir/fig3_report.cpp.o"
  "CMakeFiles/fig3_report.dir/fig3_report.cpp.o.d"
  "fig3_report"
  "fig3_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
