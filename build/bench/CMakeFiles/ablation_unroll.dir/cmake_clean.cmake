file(REMOVE_RECURSE
  "CMakeFiles/ablation_unroll.dir/ablation_unroll.cpp.o"
  "CMakeFiles/ablation_unroll.dir/ablation_unroll.cpp.o.d"
  "ablation_unroll"
  "ablation_unroll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_unroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
