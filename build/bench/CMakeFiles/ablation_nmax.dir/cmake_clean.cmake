file(REMOVE_RECURSE
  "CMakeFiles/ablation_nmax.dir/ablation_nmax.cpp.o"
  "CMakeFiles/ablation_nmax.dir/ablation_nmax.cpp.o.d"
  "ablation_nmax"
  "ablation_nmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
