# Empty dependencies file for ablation_nmax.
# This may be replaced when dependencies are built.
