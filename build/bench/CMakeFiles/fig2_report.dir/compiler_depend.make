# Empty compiler generated dependencies file for fig2_report.
# This may be replaced when dependencies are built.
