file(REMOVE_RECURSE
  "CMakeFiles/fig2_report.dir/fig2_report.cpp.o"
  "CMakeFiles/fig2_report.dir/fig2_report.cpp.o.d"
  "fig2_report"
  "fig2_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
