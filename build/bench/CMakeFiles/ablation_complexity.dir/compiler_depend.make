# Empty compiler generated dependencies file for ablation_complexity.
# This may be replaced when dependencies are built.
