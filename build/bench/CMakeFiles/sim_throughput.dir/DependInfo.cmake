
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/sim_throughput.cpp" "bench/CMakeFiles/sim_throughput.dir/sim_throughput.cpp.o" "gcc" "bench/CMakeFiles/sim_throughput.dir/sim_throughput.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mempart_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/mempart_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mempart_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/mempart_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mempart_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mempart_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/loopnest/CMakeFiles/mempart_loopnest.dir/DependInfo.cmake"
  "/root/repo/build/src/img/CMakeFiles/mempart_img.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
