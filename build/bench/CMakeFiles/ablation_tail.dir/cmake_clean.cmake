file(REMOVE_RECURSE
  "CMakeFiles/ablation_tail.dir/ablation_tail.cpp.o"
  "CMakeFiles/ablation_tail.dir/ablation_tail.cpp.o.d"
  "ablation_tail"
  "ablation_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
