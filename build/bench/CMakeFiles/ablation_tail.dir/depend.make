# Empty dependencies file for ablation_tail.
# This may be replaced when dependencies are built.
