// mempart — command-line front end to the partitioning library.
//
//   mempart solve   --pattern LoG --shape 640x480 --nmax 10 --strategy same-size
//   mempart solve   --pattern box:4 --bandwidth 2
//   mempart solve   --pattern my_pattern.txt            (ASCII art file)
//   mempart solve   --pattern LoG --trace t.json --metrics m.json
//   mempart profile --pattern LoG --shape 640x480 --trace t.json
//   mempart parse   stencil.c --shape 640x480           (C-like stencil file)
//   mempart verilog --pattern LoG --shape 640x480 --tb
//   mempart check   solution.mps                        (verify a record)
//   mempart check   repro.json                          (replay a fuzz repro)
//   mempart fuzz    --iters 10000 --seed 7 --out repros (differential fuzz)
//   mempart batch   --in reqs.ndjson --threads 4        (bulk cached solves)
//   mempart batch   --in reqs.ndjson --openmetrics m.txt --ndjson m.ndjson
//   mempart serve                                       (daemon on stdin/stdout)
//   mempart serve   --socket /tmp/mempart.sock --queue-depth 256
//   mempart stats   --in m.txt                          (render a snapshot)
//   mempart stats   --in m.ndjson --watch               (live refresh)
//   mempart table1                                      (paper comparison)
//
// Pattern sources: a Table 1 benchmark name (LoG, Canny, Prewitt, SE,
// Sobel3D, Median, Gaussian), a generator spec (box:K, cross:A, row:K,
// box3d:K), or a path to an ASCII-art file ('#' marks an element).
//
// --trace FILE / --metrics FILE enable the obs layer for the run and write
// Chrome trace-event JSON / metrics JSON on exit. --openmetrics FILE /
// --ndjson FILE start the periodic snapshotter: OpenMetrics text rewritten
// and an NDJSON sample appended every --snapshot-interval-ms while the
// command runs, plus once at exit (docs/OBSERVABILITY.md).
#include <signal.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "baseline/ltb.h"
#include "check/config.h"
#include "check/differential.h"
#include "check/fuzzer.h"
#include "common/args.h"
#include "common/env.h"
#include "common/errors.h"
#include "common/parallel.h"
#include "common/table.h"
#include "core/solution_io.h"
#include "hw/rtl_gen.h"
#include "loopnest/schedule.h"
#include "loopnest/stencil_parser.h"
#include "loopnest/stencil_program.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/sinks.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "pattern/pattern_io.h"
#include "pattern/pattern_library.h"
#include "serve/server.h"

namespace {

using namespace mempart;

/// Exit code for "the downstream reader of our NDJSON output went away"
/// (EPIPE with SIGPIPE ignored). Distinct from 1 (request-level failures)
/// so a pipeline supervisor can tell "bad input" from "consumer died";
/// telemetry for the work completed so far is still flushed.
constexpr int kExitBrokenPipe = 3;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  MEMPART_REQUIRE(in.good(), "cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Pattern resolve_pattern(const std::string& spec) {
  // Benchmark names and generator specs resolve in the library (with
  // guarded count parsing); anything else is read as an ASCII-art file.
  std::optional<Pattern> known = patterns::pattern_from_spec(spec);
  if (known.has_value()) return *std::move(known);
  return parse_pattern_2d(read_file(spec), spec);
}

void add_solver_flags(ArgParser& args) {
  args.add_string("pattern", "LoG", "pattern name, generator spec or art file")
      .add_string("shape", "", "array shape, e.g. 640x480 (empty = none)")
      .add_int("nmax", 0, "bank-count cap N_max (0 = unconstrained)")
      .add_int("bandwidth", 1, "bank bandwidth B (accesses/bank/cycle)")
      .add_string("strategy", "fast", "N_max strategy: fast | same-size")
      .add_string("tail", "padded", "tail policy: padded | compact");
}

void add_obs_flags(ArgParser& args) {
  args.add_string("trace", "", "write Chrome trace-event JSON to this file")
      .add_string("metrics", "", "write metrics-registry JSON to this file")
      .add_string("openmetrics", "",
                  "snapshot the registry as OpenMetrics text to this file "
                  "(rewritten every interval and at exit)")
      .add_string("ndjson", "",
                  "append one NDJSON metrics sample per interval to this "
                  "file (a time series `mempart stats --watch` can follow)")
      .add_int("snapshot-interval-ms", 1000,
               "snapshotter period for --openmetrics/--ndjson");
}

/// Turns the obs layer on when --trace/--metrics/--openmetrics/--ndjson ask
/// for an artifact, runs the periodic snapshotter for the live formats, and
/// writes everything out in finish(). Scoped so every instrumented call
/// between construction and destruction lands in the export.
class ObsSession {
 public:
  explicit ObsSession(const ArgParser& args)
      : trace_path_(args.get_string("trace")),
        metrics_path_(args.get_string("metrics")) {
    if (!trace_path_.empty()) {
      obs::set_tracing_enabled(true);
      obs::TraceLog::instance().clear();
    }
    obs::SnapshotOptions snapshot;
    snapshot.openmetrics_path = args.get_string("openmetrics");
    snapshot.ndjson_path = args.get_string("ndjson");
    const bool live =
        !snapshot.openmetrics_path.empty() || !snapshot.ndjson_path.empty();
    if (!metrics_path_.empty() || live) {
      obs::set_metrics_enabled(true);
      obs::Registry::instance().clear();
    }
    if (live) {
      snapshot.interval =
          std::chrono::milliseconds(args.get_int("snapshot-interval-ms"));
      // Every tick refreshes the cache.* gauges first, so the exported
      // snapshot always carries current hit/miss/eviction numbers even
      // though SolveCache only publishes on demand. The pointer is atomic:
      // publish_cache() may swap it after the snapshotter thread started.
      snapshot.before_snapshot = [this] {
        const SolveCache* cache = cache_.load(std::memory_order_acquire);
        if (cache != nullptr) cache->publish_stats();
        const serve::Server* server =
            server_.load(std::memory_order_acquire);
        if (server != nullptr) server->publish_stats();
      };
      snapshotter_.emplace(std::move(snapshot));
      snapshotter_->start();
    }
  }

  /// Commands running on their own SolveCache (`mempart batch`) point the
  /// export here; everything else snapshots the process-wide cache.
  void publish_cache(const SolveCache* cache) {
    cache_.store(cache, std::memory_order_release);
  }

  /// `mempart serve` registers its server so every snapshot tick carries
  /// live serve.* gauges alongside the cache.* ones. The server must stay
  /// alive until finish() returns.
  void publish_server(const serve::Server* server) {
    server_.store(server, std::memory_order_release);
  }

  /// Stops the snapshotter (final snapshot included) and writes the
  /// requested artifacts (call after the traced work finishes).
  void finish() {
    if (snapshotter_.has_value()) {
      snapshotter_->stop();
    }
    const SolveCache* cache = cache_.load(std::memory_order_acquire);
    if (!metrics_path_.empty() && cache != nullptr) {
      // Snapshot the solve cache into cache.* gauges so the metrics export
      // reflects it (docs/OBSERVABILITY.md).
      cache->publish_stats();
    }
    if (!trace_path_.empty()) {
      obs::write_text_file(trace_path_, obs::chrome_trace_json());
      std::cout << "trace written to " << trace_path_ << '\n';
    }
    if (!metrics_path_.empty()) {
      obs::write_text_file(metrics_path_, obs::metrics_json());
      std::cout << "metrics written to " << metrics_path_ << '\n';
    }
  }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::atomic<const SolveCache*> cache_{&SolveCache::global()};
  std::atomic<const serve::Server*> server_{nullptr};
  std::optional<obs::Snapshotter> snapshotter_;
};

PartitionRequest request_from(const ArgParser& args, const Pattern& pattern) {
  PartitionRequest req;
  req.pattern = pattern;
  if (!args.get_string("shape").empty()) {
    req.array_shape = parse_shape(args.get_string("shape"));
  }
  req.max_banks = args.get_int("nmax");
  req.bank_bandwidth = args.get_int("bandwidth");
  const std::string& strategy = args.get_string("strategy");
  MEMPART_REQUIRE(strategy == "fast" || strategy == "same-size",
                  "--strategy must be fast or same-size");
  req.strategy = strategy == "fast" ? ConstraintStrategy::kFastFold
                                    : ConstraintStrategy::kSameSize;
  const std::string& tail = args.get_string("tail");
  MEMPART_REQUIRE(tail == "padded" || tail == "compact",
                  "--tail must be padded or compact");
  req.tail = tail == "padded" ? TailPolicy::kPadded : TailPolicy::kCompact;
  return req;
}

int cmd_solve(const std::vector<std::string>& argv) {
  ArgParser args("mempart solve", "Partition an array for an access pattern.");
  add_solver_flags(args);
  args.add_string("record", "", "write the solution record to this file");
  add_obs_flags(args);
  args.parse(argv);
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }
  ObsSession session(args);
  const Pattern pattern = resolve_pattern(args.get_string("pattern"));
  const PartitionRequest req = request_from(args, pattern);
  Partitioner partitioner;  // shares the process-wide solve cache
  const PartitionSolution sol = partitioner.solve_cached(req);

  std::cout << pattern.to_string() << '\n';
  if (pattern.rank() == 2) std::cout << render_pattern_2d(pattern);
  std::cout << '\n' << sol.summary() << '\n';
  std::cout << "pattern element banks:";
  for (Count b : sol.pattern_banks) std::cout << ' ' << b;
  std::cout << '\n';
  if (!args.get_string("record").empty()) {
    std::ofstream out(args.get_string("record"));
    MEMPART_REQUIRE(out.good(), "cannot write record file");
    out << write_solution_record(req, sol);
    std::cout << "record written to " << args.get_string("record") << '\n';
  }
  session.finish();
  return 0;
}

int cmd_profile(const std::vector<std::string>& argv) {
  ArgParser args("mempart profile",
                 "Solve, replay the full loop nest through the banked-memory "
                 "simulator, and export trace/metrics artifacts.");
  add_solver_flags(args);
  args.add_int("ports", 1, "simulator ports per bank");
  args.add_bool("fast", "replay through the compiled AccessPlan fast path "
                        "(identical statistics, no per-access address math)");
  add_obs_flags(args);
  args.parse(argv);
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }
  ObsSession session(args);
  const Pattern pattern = resolve_pattern(args.get_string("pattern"));
  PartitionRequest req = request_from(args, pattern);
  MEMPART_REQUIRE(req.array_shape.has_value(), "profile needs --shape");

  sim::AccessStats stats;
  {
    obs::Span span("profile");
    span.arg("pattern", pattern.name());
    Partitioner partitioner;  // shares the process-wide solve cache
    const PartitionSolution sol = partitioner.solve_cached(req);
    std::cout << sol.summary() << '\n';
    const sim::CoreAddressMap map(*sol.mapping);
    const loopnest::StencilProgram program(*req.array_shape, pattern,
                                           pattern.name());
    stats = args.get_bool("fast")
                ? loopnest::simulate_fast(program, map, args.get_int("ports"))
                : loopnest::simulate(program, map, args.get_int("ports"));
  }
  std::cout << "replay: " << stats.iterations << " iterations, "
            << stats.cycles << " cycles (" << stats.avg_cycles_per_iteration()
            << " cycles/iter, " << stats.effective_bandwidth()
            << " elems/cycle), " << stats.conflict_cycles
            << " conflict cycles\n";
  session.finish();
  return 0;
}

int cmd_verilog(const std::vector<std::string>& argv) {
  ArgParser args("mempart verilog",
                 "Emit a synthesizable bank/offset address generator.");
  add_solver_flags(args);
  args.add_bool("tb", "also emit a self-checking testbench");
  args.add_string("module", "mempart_addr_gen", "generated module name");
  args.parse(argv);
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }
  const Pattern pattern = resolve_pattern(args.get_string("pattern"));
  PartitionRequest req = request_from(args, pattern);
  MEMPART_REQUIRE(req.array_shape.has_value(),
                  "verilog generation needs --shape");
  const PartitionSolution sol = Partitioner::solve(req);
  const hw::AddrGenIr ir = hw::build_addr_gen_ir(*sol.mapping);
  hw::RtlOptions options;
  options.module_name = args.get_string("module");
  std::cout << hw::emit_verilog(ir, options);
  if (args.get_bool("tb")) {
    std::vector<NdIndex> vectors;
    const NdShape& shape = *req.array_shape;
    for (Count i = 0; i < 8; ++i) {
      vectors.push_back(shape.unflatten((i * 7919) % shape.volume()));
    }
    std::cout << '\n' << hw::emit_verilog_testbench(ir, vectors, options);
  }
  return 0;
}

int cmd_parse(const std::vector<std::string>& argv) {
  ArgParser args("mempart parse",
                 "Parse a C-like stencil file, extract and solve its pattern.");
  args.add_string("shape", "640x480", "array shape for the mapping");
  args.parse(argv);
  if (args.help_requested() || args.positionals().empty()) {
    std::cout << args.usage() << "\npositional: path to the stencil source\n";
    return args.help_requested() ? 0 : 1;
  }
  const loopnest::ParsedStencil parsed =
      loopnest::parse_stencil(read_file(args.positionals().front()));
  const Pattern pattern = parsed.kernel.support().normalized();
  std::cout << "input array " << parsed.input_array << ", pattern:\n";
  if (pattern.rank() == 2) std::cout << render_pattern_2d(pattern);
  PartitionRequest req;
  req.pattern = pattern;
  req.array_shape = parse_shape(args.get_string("shape"));
  std::cout << '\n' << Partitioner::solve(req).summary() << '\n';
  return 0;
}

/// Replays one fuzz repro (or bare config) JSON through the differential
/// matrix. Returns 0 when the config no longer diverges.
int replay_repro(const std::string& path) {
  const check::CheckConfig config = check::config_from_repro(read_file(path));
  const check::DiffReport report = check::run_config(config);
  std::cout << path << ": ";
  if (report.clean_reject) {
    std::cout << "CLEAN REJECT (" << report.reject_reason << ")\n";
    return 0;
  }
  if (!report.diverged()) {
    std::cout << "OK (" << report.oracle_positions
              << " oracle positions, no divergence)\n";
    return 0;
  }
  std::cout << "DIVERGED\n";
  for (const check::Divergence& d : report.divergences) {
    std::cout << "  [" << d.kind << "] " << d.detail << '\n';
  }
  return 1;
}

int cmd_check(const std::vector<std::string>& argv) {
  ArgParser args("mempart check",
                 "Verify a stored solution record (.mps) or replay a fuzz "
                 "repro / config (.json) through the differential matrix.");
  args.parse(argv);
  if (args.help_requested() || args.positionals().empty()) {
    std::cout << args.usage()
              << "\npositional: path to a .mps record or a repro .json\n";
    return args.help_requested() ? 0 : 1;
  }
  const std::string& path = args.positionals().front();
  if (path.size() >= 5 && path.substr(path.size() - 5) == ".json") {
    return replay_repro(path);
  }
  const SolutionRecord record = read_solution_record(read_file(path));
  if (verify_record(record)) {
    std::cout << "OK: record reproduces (Nf=" << record.nf
              << ", Nc=" << record.nc << ", delta=" << record.delta << ")\n";
    return 0;
  }
  std::cout << "STALE: re-solving the request no longer matches the record\n";
  return 1;
}

int cmd_fuzz(const std::vector<std::string>& argv) {
  ArgParser args("mempart fuzz",
                 "Differential fuzzing: random configs through the solver, "
                 "the LTB baseline, the AccessPlan fast path and the "
                 "brute-force oracle; failing configs are minimised and "
                 "written as JSON repros.");
  args.add_int("iters", 1000, "configurations to draw");
  args.add_int("seed", 1, "generator seed (same seed = same run)");
  args.add_string("out", ".", "directory for repro JSON files");
  args.add_bool("no-shrink", "emit raw failing configs without minimising");
  add_obs_flags(args);
  args.parse(argv);
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }
  ObsSession session(args);
  check::FuzzOptions options;
  options.iters = args.get_int("iters");
  options.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  options.repro_dir = args.get_string("out");
  options.shrink = !args.get_bool("no-shrink");
  const check::FuzzSummary summary = check::run_fuzz(options);
  std::cout << "fuzz: " << summary.iters_run << " configs, " << summary.ok
            << " ok, " << summary.clean_rejects << " clean rejects, "
            << summary.divergences << " divergences\n";
  for (const std::string& repro : summary.repro_paths) {
    std::cout << "  repro: " << repro << '\n';
  }
  for (const std::string& flight : summary.flight_paths) {
    std::cout << "  flight: " << flight << '\n';
  }
  session.finish();
  return summary.clean() ? 0 : 1;
}

/// One NDJSON input line of `mempart batch`, parsed up front so malformed
/// lines produce a per-line error instead of aborting the stream.
struct BatchLine {
  std::size_t line_number = 0;
  std::optional<PartitionRequest> request;  // empty when parsing failed
  std::string error;
};

BatchLine parse_batch_line(std::size_t line_number, const std::string& text) {
  BatchLine parsed;
  parsed.line_number = line_number;
  try {
    const check::CheckConfig config = check::CheckConfig::from_json(text);
    PartitionRequest request;
    request.pattern = Pattern(config.offsets);
    if (!config.shape.empty()) request.array_shape = NdShape(config.shape);
    request.max_banks = config.max_banks;
    request.bank_bandwidth = config.bank_bandwidth;
    request.strategy = config.strategy;
    request.tail = config.tail;
    parsed.request = std::move(request);
  } catch (const Error& e) {
    parsed.error = e.what();
  }
  return parsed;
}

void write_batch_result(std::ostream& out, std::size_t line_number,
                        const PartitionSolution& sol) {
  out << "{\"line\": " << line_number << ", \"ok\": true, \"num_banks\": "
      << sol.num_banks() << ", \"delta_ii\": " << sol.delta_ii()
      << ", \"fold_factor\": " << sol.constraint.fold_factor << ", \"alpha\": [";
  const std::vector<Count>& alpha = sol.transform.alpha();
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    out << (i ? ", " : "") << alpha[i];
  }
  out << "], \"pattern_banks\": [";
  for (std::size_t i = 0; i < sol.pattern_banks.size(); ++i) {
    out << (i ? ", " : "") << sol.pattern_banks[i];
  }
  out << "], \"ops\": " << sol.ops.arithmetic();
  if (sol.mapping.has_value()) {
    out << ", \"storage_overhead\": " << sol.storage_overhead_elements();
  }
  out << "}\n";
}

void write_batch_error(std::ostream& out, std::size_t line_number,
                       const std::string& error) {
  out << "{\"line\": " << line_number << ", \"ok\": false, \"error\": \""
      << obs::json_escape(error) << "\"}\n";
}

int cmd_batch(const std::vector<std::string>& argv) {
  ArgParser args("mempart batch",
                 "Stream NDJSON partition requests (one CheckConfig JSON "
                 "object per line, the `mempart fuzz` repro schema) through "
                 "the canonical solution cache and the batched solver; "
                 "results come out as NDJSON in input order.");
  args.add_string("in", "", "input NDJSON file (empty = stdin)");
  args.add_string("out", "", "output NDJSON file (empty = stdout)");
  args.add_int("threads", 0, "worker threads for distinct solves (0 = auto)");
  args.add_int("chunk", 1024, "requests solved per streamed window");
  args.add_int("min-grain", 16, "minimum solves per scheduled chunk");
  args.add_int("cache-capacity", 4096, "solution-cache entries (0 = uncached)");
  args.add_int("cache-shards", 0, "cache lock shards (0 = auto)");
  add_obs_flags(args);
  args.parse(argv);
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }
  MEMPART_REQUIRE(args.get_int("chunk") >= 1, "--chunk must be >= 1");
  ObsSession session(args);

  std::ifstream in_file;
  if (!args.get_string("in").empty()) {
    in_file.open(args.get_string("in"));
    MEMPART_REQUIRE(in_file.good(),
                    "cannot open '" + args.get_string("in") + "'");
  }
  std::istream& in = args.get_string("in").empty() ? std::cin : in_file;
  std::ofstream out_file;
  if (!args.get_string("out").empty()) {
    out_file.open(args.get_string("out"));
    MEMPART_REQUIRE(out_file.good(),
                    "cannot write '" + args.get_string("out") + "'");
  }
  std::ostream& out = args.get_string("out").empty() ? std::cout : out_file;

  const Count capacity = args.get_int("cache-capacity");
  std::optional<SolveCache> cache;
  if (capacity > 0) {
    cache.emplace(capacity, static_cast<Count>(args.get_int("cache-shards")));
  }
  Partitioner partitioner(capacity > 0 ? &*cache : nullptr);
  session.publish_cache(capacity > 0 ? &*cache : nullptr);
  BatchOptions options;
  options.threads = args.get_int("threads");
  options.min_grain = std::max<Count>(1, args.get_int("min-grain"));

  const std::size_t window = static_cast<std::size_t>(args.get_int("chunk"));
  std::vector<BatchLine> lines;
  std::vector<PartitionRequest> requests;
  std::size_t line_number = 0;
  std::size_t solved = 0;
  std::size_t failed = 0;
  bool downstream_closed = false;

  const auto flush = [&] {
    requests.clear();
    for (const BatchLine& line : lines) {
      if (line.request.has_value()) requests.push_back(*line.request);
    }
    const std::vector<BatchResult> results =
        partitioner.solve_many_collect(requests, options);
    std::size_t next = 0;
    for (const BatchLine& line : lines) {
      if (!line.request.has_value()) {
        write_batch_error(out, line.line_number, line.error);
        ++failed;
        continue;
      }
      const BatchResult& result = results[next++];
      if (result.ok()) {
        write_batch_result(out, line.line_number, *result.solution);
        ++solved;
      } else {
        write_batch_error(out, line.line_number, result.error);
        ++failed;
      }
    }
    lines.clear();
    // With SIGPIPE ignored, a downstream reader that went away surfaces as
    // badbit on flush. Stop solving for nobody — but fall through to the
    // summary and telemetry flush below so the partial run is accounted.
    out.flush();
    if (!out.good()) downstream_closed = true;
  };

  std::string text;
  while (!downstream_closed && std::getline(in, text)) {
    ++line_number;
    // Skip blank lines so `jq`-friendly files with trailing newlines work.
    if (text.find_first_not_of(" \t\r") == std::string::npos) continue;
    lines.push_back(parse_batch_line(line_number, text));
    if (lines.size() >= window) flush();
  }
  if (!downstream_closed) flush();

  std::cerr << "batch: " << (solved + failed) << " requests, " << solved
            << " solved, " << failed << " failed";
  if (downstream_closed) std::cerr << "; output pipe closed early";
  if (cache.has_value()) {
    const SolveCache::Stats stats = cache->stats();
    std::cerr << "; cache " << stats.hits << " hits / " << stats.misses
              << " misses / " << stats.evictions << " evictions ("
              << stats.entries << '/' << stats.capacity << " entries, "
              << stats.shards << " shards)";
  }
  std::cerr << '\n';
  session.finish();
  if (downstream_closed) return kExitBrokenPipe;
  return failed == 0 ? 0 : 1;
}

/// The live server for the SIGTERM/SIGINT drain handler. Only cmd_serve
/// writes it; the handler merely loads and pokes request_shutdown(), which
/// is async-signal-safe by contract.
std::atomic<serve::Server*> g_serve_server{nullptr};

extern "C" void handle_serve_signal(int) {
  serve::Server* server = g_serve_server.load(std::memory_order_acquire);
  if (server != nullptr) server->request_shutdown();
}

int cmd_serve(const std::vector<std::string>& argv) {
  ArgParser args("mempart serve",
                 "Run the persistent partitioning daemon: NDJSON requests "
                 "(the batch schema plus id/tenant tags) over stdin/stdout "
                 "or an AF_UNIX socket, solved through the shared solution "
                 "cache with bounded-queue admission control. SIGTERM/SIGINT "
                 "drain gracefully: every admitted request is answered and "
                 "the final telemetry snapshot is written before exit. See "
                 "docs/SERVING.md.");
  args.add_string("socket", "",
                  "AF_UNIX socket path to listen on (empty = pipe mode over "
                  "stdin/stdout)");
  args.add_int("threads", 0, "solver worker threads (0 = auto)");
  args.add_int("queue-depth", 1024,
               "admission queue bound; requests beyond it get a shed "
               "response instead of queueing");
  args.add_int("max-batch", 32,
               "max queued requests one worker drains into a single "
               "deduplicated solve_many batch");
  args.add_int("cache-capacity", 0,
               "reconfigure the process-wide solve cache to this many "
               "entries before serving (0 = keep current size)");
  args.add_int("cache-shards", 0,
               "cache lock shards when --cache-capacity resizes (0 = auto)");
  add_obs_flags(args);
  args.parse(argv);
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }
  ObsSession session(args);

  serve::ServeOptions options;
  options.socket_path = args.get_string("socket");
  options.threads = args.get_int("threads");
  options.queue_depth = args.get_int("queue-depth");
  options.max_batch = args.get_int("max-batch");
  if (args.get_int("cache-capacity") > 0) {
    // Explicit, thread-safe resize of the shared cache — the daemon's
    // sizing flag must win over whatever earlier code first touched
    // SolveCache::global() with.
    SolveCache::global().reconfigure(args.get_int("cache-capacity"),
                                     args.get_int("cache-shards"));
  }
  serve::Server server(options);
  session.publish_server(&server);
  g_serve_server.store(&server, std::memory_order_release);

  // sigaction without SA_RESTART (std::signal would set it): the drain
  // signal must interrupt the blocking stdin read / poll so the server
  // notices the shutdown instead of waiting for the next request.
  struct sigaction action {};
  action.sa_handler = handle_serve_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  const serve::ServeSummary summary = options.socket_path.empty()
                                          ? server.run_pipe(std::cin, std::cout)
                                          : server.run_socket();
  g_serve_server.store(nullptr, std::memory_order_release);

  std::cerr << "serve: " << summary.admitted << " admitted, "
            << summary.solved << " solved, " << summary.failed << " failed, "
            << summary.shed << " shed";
  if (!options.socket_path.empty()) {
    std::cerr << ", " << summary.connections << " connections";
  }
  if (summary.write_failures > 0) {
    std::cerr << ", " << summary.write_failures << " responses undeliverable";
  }
  if (summary.drained) std::cerr << " (drained on signal)";
  if (summary.downstream_closed) std::cerr << "; output pipe closed early";
  std::cerr << '\n';
  const SolveCache::Stats stats = SolveCache::global().stats();
  std::cerr << "serve: cache " << stats.hits << " hits / " << stats.misses
            << " misses / " << stats.evictions << " evictions ("
            << stats.entries << '/' << stats.capacity << " entries, "
            << stats.shards << " shards)\n";
  server.publish_stats();
  session.finish();
  return summary.downstream_closed ? kExitBrokenPipe : 0;
}

/// Loads one snapshot file into the flat metric view. Explicit --format
/// wins; otherwise a leading '{' means an NDJSON series, anything else is
/// parsed as OpenMetrics text.
obs::MetricSample load_sample(const std::string& path,
                              const std::string& format) {
  const std::string text = read_file(path);
  std::string resolved = format;
  if (resolved == "auto") {
    const std::size_t first = text.find_first_not_of(" \t\r\n");
    resolved = first != std::string::npos && text[first] == '{'
                   ? "ndjson"
                   : "openmetrics";
  }
  MEMPART_REQUIRE(resolved == "openmetrics" || resolved == "ndjson",
                  "--format must be auto, openmetrics or ndjson");
  return resolved == "ndjson" ? obs::last_ndjson_sample(text)
                              : obs::parse_openmetrics(text);
}

std::string render_stats_table(const obs::MetricSample& sample) {
  TextTable table;
  table.row({"metric", "value"});
  table.separator();
  for (const auto& [name, value] : sample) {
    table.add_row();
    table.cell(name);
    // Counters and nanosecond percentiles are integers; keep them free of
    // a ".00" tail so the table greps like the source formats.
    if (value == std::floor(value) && std::abs(value) < 1e15) {
      table.cell(static_cast<std::int64_t>(value));
    } else {
      table.cell(value, 3);
    }
  }
  return table.to_string();
}

int cmd_stats(const std::vector<std::string>& argv) {
  ArgParser args("mempart stats",
                 "Render a metrics snapshot written by --openmetrics or "
                 "--ndjson as an aligned table (one-shot, or --watch to "
                 "follow a live file).");
  args.add_string("in", "", "snapshot file: OpenMetrics text or NDJSON "
                            "series (also accepted as a positional)");
  args.add_string("format", "auto", "input format: auto | openmetrics | "
                                    "ndjson");
  args.add_bool("watch", "re-read and re-render every --interval-ms until "
                         "interrupted");
  args.add_int("interval-ms", 1000, "refresh period for --watch");
  args.parse(argv);
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }
  std::string path = args.get_string("in");
  if (path.empty() && !args.positionals().empty()) {
    path = args.positionals().front();
  }
  MEMPART_REQUIRE(!path.empty(),
                  "mempart stats: need --in FILE (or a positional path)");
  if (!args.get_bool("watch")) {
    std::cout << render_stats_table(load_sample(path, args.get_string("format")));
    return 0;
  }
  const auto interval =
      std::chrono::milliseconds(std::max(1, static_cast<int>(args.get_int("interval-ms"))));
  for (;;) {
    std::string body;
    try {
      body = render_stats_table(load_sample(path, args.get_string("format")));
    } catch (const Error& e) {
      // A snapshot mid-rewrite can be momentarily unparsable; keep watching.
      body = std::string("(") + e.what() + ")\n";
    }
    // ANSI home+clear keeps the refresh flicker-free on any vt100 terminal.
    std::cout << "\033[H\033[2J" << path << '\n' << body << std::flush;
    std::this_thread::sleep_for(interval);
  }
}

int cmd_table1(const std::vector<std::string>& argv) {
  ArgParser args("mempart table1",
                 "Compare ours vs the LTB baseline on the paper's benchmarks.");
  args.add_int("threads", 1,
               "worker threads sharding the per-pattern solves and the LTB "
               "alpha enumeration (0 = auto); output order is fixed");
  add_obs_flags(args);
  args.parse(argv);
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }
  const Count threads = args.get_int("threads");
  // Before the pool: workers spawned later inherit the metrics switch, so
  // the bank_search.minimize.ns / ltb.alpha_search.ns series cover the
  // solves running on pool threads too.
  ObsSession obs_session(args);
  const auto all_patterns = patterns::table1_patterns();
  struct Row {
    std::string line;
  };
  ThreadPool pool(threads == 0 ? Count{0} : std::max<Count>(1, threads));
  const std::vector<Row> rows = pool.map_chunked<Row>(
      static_cast<Count>(all_patterns.size()), 1, [&](Count i) {
        const Pattern& p = all_patterns[static_cast<size_t>(i)];
        PartitionRequest req;
        req.pattern = p;
        const PartitionSolution ours = Partitioner::solve(req);
        baseline::LtbOptions ltb_options;
        ltb_options.threads = 1;  // the pool already shards across patterns
        const baseline::LtbSolution ltb = baseline::ltb_solve(p, ltb_options);
        std::ostringstream line;
        line << p.name() << ": ours " << ours.num_banks() << " banks / "
             << ours.ops.arithmetic() << " ops, LTB " << ltb.num_banks
             << " banks / " << ltb.ops.arithmetic() << " ops\n";
        return Row{line.str()};
      });
  for (const Row& row : rows) std::cout << row.line;
  obs_session.finish();
  return 0;
}

int usage() {
  std::cout <<
      "mempart <command> [flags]\n"
      "commands:\n"
      "  solve    partition an array for an access pattern\n"
      "  profile  solve + full loop-nest replay, exporting trace/metrics\n"
      "  verilog  emit the address-generator RTL for a solution\n"
      "  parse    extract and solve the pattern of a C-like stencil file\n"
      "  check    verify a solution record or replay a fuzz repro JSON\n"
      "  fuzz     differential fuzzing against the brute-force oracle\n"
      "  batch    stream NDJSON requests through the cached batch solver\n"
      "  serve    persistent partitioning daemon (pipe or unix socket)\n"
      "  stats    render an --openmetrics/--ndjson snapshot as a table\n"
      "  table1   quick ours-vs-LTB comparison on the paper's benchmarks\n"
      "run 'mempart <command> --help' for per-command flags\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Crash dumps are a CLI-wide contract: any abnormal exit writes the
  // flight recorder's last events to MEMPART_FLIGHT_DIR (default cwd).
  mempart::obs::install_flight_crash_handler();
  // batch/serve write NDJSON to pipes whose reader may exit first; the
  // default SIGPIPE disposition would kill the process mid-drain. Ignored,
  // the write fails with EPIPE instead and the commands exit with
  // kExitBrokenPipe after flushing their telemetry.
  ::signal(SIGPIPE, SIG_IGN);
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const std::vector<std::string> rest(argv + 2, argv + argc);
  try {
    // Garbage in a MEMPART_* variable is a hard startup error with a
    // diagnostic naming the variable — not a silent fallback discovered
    // three flags later (see common/env.h).
    mempart::validate_env();
    if (command == "solve") return cmd_solve(rest);
    if (command == "profile") return cmd_profile(rest);
    if (command == "verilog") return cmd_verilog(rest);
    if (command == "parse") return cmd_parse(rest);
    if (command == "check") return cmd_check(rest);
    if (command == "fuzz") return cmd_fuzz(rest);
    if (command == "batch") return cmd_batch(rest);
    if (command == "serve") return cmd_serve(rest);
    if (command == "stats") return cmd_stats(rest);
    if (command == "table1") return cmd_table1(rest);
    if (command == "--help" || command == "-h") {
      usage();
      return 0;
    }
    std::cerr << "unknown command '" << command << "'\n";
    return usage();
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
