// mempart_lint — the repo's domain linter.
//
// Generic tools (clang-tidy, compiler warnings) cannot know mempart's
// invariants; this tool does, and the static-analysis CI job runs it as a
// hard gate. Four rules, each born from a real bug class:
//
//   raw-arith    In solver directories (any path containing a core/ or
//                pattern/ segment), a naked `%` (or `%=`), or a binary
//                `* + - /` immediately adjacent to a z-value identifier,
//                is a finding. PR 3's fuzzer kept finding exactly this —
//                unchecked arithmetic on transformed values — at runtime;
//                the checked helpers in common/math_util.h (euclid_mod,
//                checked_mul, checked_add, abs_diff_checked) exist so the
//                raw operators never appear in solver code.
//
//   mutex-guard  A Mutex / std::mutex member declared in a class or struct
//                must have at least one sibling member annotated
//                MEMPART_GUARDED_BY(that mutex). An unannotated mutex is
//                invisible to the Clang thread-safety analysis, which
//                silently un-checks everything it guards.
//
//   obs-span     Public Partitioner / AccessEngine entry points defined in
//                a .cpp must contain an obs span (directly, or via a method
//                they delegate to in the same file). The observability
//                layer is only as complete as its coverage of the solver
//                facade.
//
//   simd-guard   common/simd.h is the one file allowed to include vendor
//                intrinsic headers (<immintrin.h>, <arm_neon.h>, ...) or
//                spell vendor intrinsics (_mm*, __m128/__m256/__m512).
//                Anywhere else they bypass the runtime-dispatch tiers and
//                break non-x86 builds; go through the mempart::simd lane
//                wrappers instead. The AVX2-wide wrapper I64x4 is further
//                restricted to common/simd.h and *_avx2.cpp units — only
//                those are compiled with -mavx2, so naming it in a
//                baseline-ISA TU plants illegal instructions.
//
// Suppression: append `// mempart-lint: allow(<rule>) <reason>` to the
// offending line (or place it alone on the line above). The reason is
// mandatory — an allow() without one is itself a finding (bad-pragma).
// A pragma that no longer suppresses anything (the finding it silenced is
// gone) is reported as stale-pragma: suppressions must not outlive their
// reasons. Neither meta-rule is itself suppressible.
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.
//
// The tool is dependency-free by design (standard library only) and is
// pinned by tests/lint/: a fixture corpus with exact finding counts plus a
// zero-findings self-check over the real src/ tree.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Data model
// ---------------------------------------------------------------------------

struct Finding {
  std::string file;
  int line = 0;
  int col = 0;  ///< 1-based column; 0 when the construct has no single column
  std::string rule;
  std::string message;
};

enum class TokKind { kIdent, kNumber, kPunct };

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;
  int col = 0;  ///< 1-based byte column of the token's first character
};

/// One `mempart-lint:` directive extracted from a comment.
struct Pragma {
  int comment_line = 0;   ///< line the comment starts on
  int comment_col = 0;    ///< column the comment starts on
  bool after_code = false;///< true when code precedes the comment on its line
  std::vector<std::string> rules;
  bool has_reason = false;
};

/// One `#include` directive with its header spelling (no angle brackets or
/// quotes), captured for the simd-guard rule.
struct Include {
  std::string header;
  int line = 0;
  int col = 0;
};

struct FileScan {
  std::vector<Token> tokens;
  std::vector<Pragma> pragmas;
  std::vector<Include> includes;
};

const std::set<std::string, std::less<>> kKnownRules = {
    "raw-arith", "mutex-guard", "obs-span", "simd-guard"};

/// Identifiers the raw-arith rule treats as z-values (transformed pattern
/// offsets). Kept deliberately small and documented in
/// docs/STATIC_ANALYSIS.md; extend it when new z spellings appear.
const std::set<std::string, std::less<>> kZIdents = {
    "z", "zs", "zvals", "z_values", "sorted_z"};

/// Classes whose public .cpp-defined entry points must carry an obs span.
const std::set<std::string, std::less<>> kSpanClasses = {"Partitioner",
                                                         "AccessEngine"};

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses a comment body for a mempart-lint directive.
void scan_comment(std::string_view body, int line, int col, bool after_code,
                  std::vector<Pragma>& out) {
  const std::string_view marker = "mempart-lint:";
  const size_t at = body.find(marker);
  if (at == std::string_view::npos) return;
  size_t pos = at + marker.size();
  while (pos < body.size() && body[pos] == ' ') ++pos;
  const std::string_view allow = "allow(";
  if (body.compare(pos, allow.size(), allow) != 0) return;
  pos += allow.size();
  const size_t close = body.find(')', pos);
  if (close == std::string_view::npos) return;
  Pragma pragma;
  pragma.comment_line = line;
  pragma.comment_col = col;
  pragma.after_code = after_code;
  std::string rule;
  for (size_t i = pos; i <= close; ++i) {
    const char c = i < close ? body[i] : ',';
    if (c == ',' ) {
      while (!rule.empty() && rule.front() == ' ') rule.erase(rule.begin());
      while (!rule.empty() && rule.back() == ' ') rule.pop_back();
      if (!rule.empty()) pragma.rules.push_back(rule);
      rule.clear();
    } else {
      rule += c;
    }
  }
  std::string_view reason = body.substr(close + 1);
  while (!reason.empty() && (reason.front() == ' ' || reason.front() == '\t')) {
    reason.remove_prefix(1);
  }
  pragma.has_reason = !reason.empty();
  out.push_back(pragma);
}

/// Parses one preprocessor directive for an #include target; records the
/// header spelling (without delimiters) for the simd-guard rule.
void scan_directive(std::string_view directive, int line, int col,
                    std::vector<Include>& out) {
  size_t pos = 0;
  auto skip_ws = [&] {
    while (pos < directive.size() &&
           (directive[pos] == ' ' || directive[pos] == '\t')) {
      ++pos;
    }
  };
  skip_ws();
  if (pos >= directive.size() || directive[pos] != '#') return;
  ++pos;
  skip_ws();
  const std::string_view kw = "include";
  if (directive.compare(pos, kw.size(), kw) != 0) return;
  pos += kw.size();
  skip_ws();
  if (pos >= directive.size()) return;
  const char open = directive[pos];
  if (open != '<' && open != '"') return;
  const char close = open == '<' ? '>' : '"';
  const size_t end = directive.find(close, pos + 1);
  if (end == std::string_view::npos) return;
  out.push_back(
      {std::string(directive.substr(pos + 1, end - pos - 1)), line, col});
}

/// Tokenizes C++ source: comments, string/char literals and preprocessor
/// lines are consumed (not emitted); comments are scanned for pragmas and
/// directives for #include targets.
FileScan tokenize(const std::string& text) {
  FileScan scan;
  size_t i = 0;
  int line = 1;
  size_t line_start = 0;  // byte offset where the current line begins
  bool line_has_token = false;
  const size_t n = text.size();
  auto newline = [&](size_t nl_pos) {
    ++line;
    line_start = nl_pos + 1;
    line_has_token = false;
  };
  auto col_of = [&](size_t pos) {
    return static_cast<int>(pos - line_start) + 1;
  };
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      newline(i);
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    // Preprocessor directive: consume to end of line, honoring backslash
    // continuations. The only linted construct is the #include target.
    if (c == '#' && !line_has_token) {
      const int directive_line = line;
      const int directive_col = col_of(i);
      std::string directive;
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          newline(i + 1);
          i += 2;
          continue;
        }
        if (text[i] == '\n') break;
        directive += text[i];
        ++i;
      }
      scan_directive(directive, directive_line, directive_col, scan.includes);
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const int comment_col = col_of(i);
      const size_t start = i + 2;
      size_t end = start;
      while (end < n && text[end] != '\n') ++end;
      scan_comment(std::string_view(text).substr(start, end - start), line,
                   comment_col, line_has_token, scan.pragmas);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int start_line = line;
      const int start_col = col_of(i);
      const bool after_code = line_has_token;
      const size_t start = i + 2;
      size_t end = start;
      while (end + 1 < n && !(text[end] == '*' && text[end + 1] == '/')) {
        if (text[end] == '\n') {
          ++line;
          line_start = end + 1;
        }
        ++end;
      }
      scan_comment(std::string_view(text).substr(start, end - start),
                   start_line, start_col, after_code, scan.pragmas);
      i = std::min(n, end + 2);
      // A block comment ending the line: line_has_token keeps its value;
      // the newline handler resets it.
      continue;
    }
    // String literal (incl. the prefix part of raw strings).
    if (c == '"') {
      // Raw string: look back over an identifier ending in R.
      bool raw = false;
      if (!scan.tokens.empty() && scan.tokens.back().kind == TokKind::kIdent &&
          scan.tokens.back().line == line) {
        const std::string& prev = scan.tokens.back().text;
        if (!prev.empty() && prev.back() == 'R') raw = true;
      }
      if (raw) {
        // R"delim( ... )delim"
        size_t d_end = i + 1;
        while (d_end < n && text[d_end] != '(') ++d_end;
        const std::string delim =
            ")" + text.substr(i + 1, d_end - i - 1) + "\"";
        const size_t close = text.find(delim, d_end);
        const size_t stop = close == std::string::npos ? n : close + delim.size();
        for (size_t k = i; k < stop; ++k) {
          if (text[k] == '\n') {
            ++line;
            line_start = k + 1;
          }
        }
        i = stop;
        continue;
      }
      ++i;
      while (i < n && text[i] != '"') {
        if (text[i] == '\\' && i + 1 < n) ++i;
        if (text[i] == '\n') {  // unterminated; stay robust
          ++line;
          line_start = i + 1;
        }
        ++i;
      }
      ++i;
      line_has_token = true;
      continue;
    }
    // Char literal. Distinguish from digit separators (1'000'000): a quote
    // directly after a number token's digits is a separator, but separators
    // are consumed inside number scanning below, so a bare ' here is a
    // char literal.
    if (c == '\'') {
      ++i;
      while (i < n && text[i] != '\'') {
        if (text[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      ++i;
      line_has_token = true;
      continue;
    }
    if (ident_start(c)) {
      size_t end = i;
      while (end < n && ident_char(text[end])) ++end;
      scan.tokens.push_back(
          {TokKind::kIdent, text.substr(i, end - i), line, col_of(i)});
      i = end;
      line_has_token = true;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t end = i;
      while (end < n && (ident_char(text[end]) || text[end] == '\'' ||
                         ((text[end] == '+' || text[end] == '-') && end > i &&
                          (text[end - 1] == 'e' || text[end - 1] == 'E' ||
                           text[end - 1] == 'p' || text[end - 1] == 'P')))) {
        ++end;
      }
      if (end < n && text[end] == '.') {
        ++end;
        while (end < n && (ident_char(text[end]) ||
                           ((text[end] == '+' || text[end] == '-') &&
                            (text[end - 1] == 'e' || text[end - 1] == 'E')))) {
          ++end;
        }
      }
      scan.tokens.push_back(
          {TokKind::kNumber, text.substr(i, end - i), line, col_of(i)});
      i = end;
      line_has_token = true;
      continue;
    }
    // Punctuation: greedily take multi-char operators we care about.
    static const char* kMulti[] = {"<<=", ">>=", "->*", "...", "::", "->",
                                   "<<",  ">>",  "<=",  ">=",  "==", "!=",
                                   "&&",  "||",  "+=",  "-=",  "*=", "/=",
                                   "%=",  "&=",  "|=",  "^=",  "++", "--"};
    std::string punct(1, c);
    for (const char* m : kMulti) {
      const size_t len = std::char_traits<char>::length(m);
      if (text.compare(i, len, m) == 0) {
        punct = m;
        break;
      }
    }
    scan.tokens.push_back({TokKind::kPunct, punct, line, col_of(i)});
    i += punct.size();
    line_has_token = true;
  }
  return scan;
}

// ---------------------------------------------------------------------------
// Suppression
// ---------------------------------------------------------------------------

class Suppressions {
 public:
  Suppressions(const std::vector<Pragma>& pragmas, const std::string& file,
               std::vector<Finding>& findings)
      : file_(file) {
    for (const Pragma& pragma : pragmas) {
      if (!pragma.has_reason) {
        findings.push_back({file, pragma.comment_line, pragma.comment_col,
                            "bad-pragma",
                            "allow() pragma without a reason — say why the "
                            "suppression is sound"});
        continue;
      }
      bool known = false;
      for (const std::string& rule : pragma.rules) {
        if (kKnownRules.count(rule) != 0) {
          known = true;
          const int target =
              pragma.after_code ? pragma.comment_line : pragma.comment_line + 1;
          allowed_[target].insert(rule);
          entries_.push_back(
              {target, rule, pragma.comment_line, pragma.comment_col});
        }
      }
      if (!known) {
        findings.push_back({file, pragma.comment_line, pragma.comment_col,
                            "bad-pragma",
                            "allow() names no known rule (raw-arith, "
                            "mutex-guard, obs-span, simd-guard)"});
      }
    }
  }

  /// Consulting an allowance marks it used — after every rule has run,
  /// report_stale() turns the never-used remainder into findings.
  [[nodiscard]] bool allows(int line, const std::string& rule) const {
    const auto it = allowed_.find(line);
    if (it == allowed_.end() || it->second.count(rule) == 0) return false;
    used_.insert({line, rule});
    return true;
  }

  /// Emits a stale-pragma finding for each allowance that suppressed
  /// nothing. Call exactly once, after every rule has run over the file —
  /// an allowance is only provably stale once everything that could have
  /// consulted it has.
  void report_stale(std::vector<Finding>& findings) const {
    for (const Entry& entry : entries_) {
      if (used_.count({entry.target_line, entry.rule}) != 0) continue;
      findings.push_back(
          {file_, entry.comment_line, entry.comment_col, "stale-pragma",
           "allow(" + entry.rule + ") suppresses nothing — no " + entry.rule +
               " finding fires on the line it covers; delete the pragma "
               "(suppressions must not outlive their reasons)"});
    }
  }

 private:
  struct Entry {
    int target_line = 0;  ///< line the allowance covers
    std::string rule;
    int comment_line = 0;  ///< where the pragma itself sits
    int comment_col = 0;
  };

  std::string file_;
  std::map<int, std::set<std::string>> allowed_;
  std::vector<Entry> entries_;
  /// (covered line, rule) pairs that suppressed at least one finding;
  /// mutable because rules consult through a const reference.
  mutable std::set<std::pair<int, std::string>> used_;
};

// ---------------------------------------------------------------------------
// Rule: raw-arith
// ---------------------------------------------------------------------------

bool path_in_solver_dirs(const std::string& path) {
  auto has_segment = [&](std::string_view seg) {
    const std::string a = "/" + std::string(seg) + "/";
    const std::string b = std::string(seg) + "/";
    return path.find(a) != std::string::npos || path.rfind(b, 0) == 0;
  };
  return has_segment("core") || has_segment("pattern");
}

bool is_operand_end(const Token& t) {
  return t.kind == TokKind::kIdent || t.kind == TokKind::kNumber ||
         t.text == ")" || t.text == "]";
}

bool is_operand_start(const Token& t) {
  return t.kind == TokKind::kIdent || t.kind == TokKind::kNumber ||
         t.text == "(";
}

void check_raw_arith(const std::string& file, const std::vector<Token>& toks,
                     const Suppressions& supp, std::vector<Finding>& out) {
  std::set<std::pair<int, std::string>> reported;  // line -> dedup per line
  auto report = [&](int line, int col, const std::string& message) {
    if (supp.allows(line, "raw-arith")) return;
    if (!reported.insert({line, message}).second) return;
    out.push_back({file, line, col, "raw-arith", message});
  };
  const size_t n = toks.size();
  for (size_t i = 0; i < n; ++i) {
    const Token& t = toks[i];
    // (a) Any naked modulo in solver code.
    if (t.text == "%" || t.text == "%=") {
      report(t.line, t.col,
             "naked '" + t.text +
                 "' on solver arithmetic — use euclid_mod() (math_util.h) "
                 "or annotate: // mempart-lint: allow(raw-arith) <reason>");
      continue;
    }
    // (b) Binary arithmetic immediately adjacent to a z-value identifier.
    if (t.kind != TokKind::kIdent || kZIdents.count(t.text) == 0) continue;
    // Forward: optional single subscript, then an operator?
    size_t j = i + 1;
    if (j < n && toks[j].text == "[") {
      int depth = 1;
      ++j;
      while (j < n && depth > 0) {
        if (toks[j].text == "[") ++depth;
        if (toks[j].text == "]") --depth;
        ++j;
      }
    }
    const bool member_access =
        j < n && (toks[j].text == "." || toks[j].text == "->");
    if (!member_access && j < n &&
        (toks[j].text == "*" || toks[j].text == "+" || toks[j].text == "-" ||
         toks[j].text == "/")) {
      if (j + 1 < n && is_operand_start(toks[j + 1])) {
        report(toks[j].line, toks[j].col,
               "unchecked '" + toks[j].text + "' on z-value '" + t.text +
                   "' — use the checked helpers in math_util.h or annotate "
                   "with a reason");
      }
    }
    // Backward: operator directly before the identifier? For '*' the left
    // operand must be a number, ')' or ']' — an identifier there is
    // indistinguishable from a pointer declarator (`Count* z`), so plain
    // `ident * z` is deliberately not matched (documented limitation; the
    // forward check still catches `z * ident`).
    if (i > 0) {
      const Token& op = toks[i - 1];
      const bool star_ok =
          op.text != "*" ||
          (i > 1 && (toks[i - 2].kind == TokKind::kNumber ||
                     toks[i - 2].text == ")" || toks[i - 2].text == "]"));
      if ((op.text == "*" || op.text == "+" || op.text == "-" ||
           op.text == "/") &&
          star_ok && i > 1 && is_operand_end(toks[i - 2]) &&
          toks[i - 2].text != "operator") {
        report(op.line, op.col,
               "unchecked '" + op.text + "' on z-value '" + t.text +
                   "' — use the checked helpers in math_util.h or annotate "
                   "with a reason");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: mutex-guard
// ---------------------------------------------------------------------------

void check_mutex_guard(const std::string& file, const std::vector<Token>& toks,
                       const Suppressions& supp, std::vector<Finding>& out) {
  struct MutexMember {
    std::string name;
    int line = 0;
    int col = 0;
  };
  struct Scope {
    bool is_record = false;
    std::vector<MutexMember> mutexes;
    std::set<std::string> guard_args;
  };
  std::vector<Scope> stack;
  bool record_pending = false;
  const size_t n = toks.size();
  for (size_t i = 0; i < n; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kIdent) {
      if (t.text == "class" || t.text == "struct" || t.text == "union") {
        record_pending = true;
      }
      // Member declaration: [mutable] (Mutex | std::mutex) name ;
      const bool plain_mutex = t.text == "Mutex";
      const bool std_mutex = t.text == "std" && i + 2 < n &&
                             toks[i + 1].text == "::" &&
                             toks[i + 2].text == "mutex";
      if ((plain_mutex || std_mutex) && !stack.empty() &&
          stack.back().is_record) {
        const size_t name_at = i + (std_mutex ? 3 : 1);
        if (name_at + 1 < n && toks[name_at].kind == TokKind::kIdent &&
            toks[name_at + 1].text == ";") {
          stack.back().mutexes.push_back(
              {toks[name_at].text, toks[name_at].line, toks[name_at].col});
        }
      }
      if ((t.text == "MEMPART_GUARDED_BY" || t.text == "MEMPART_PT_GUARDED_BY") &&
          i + 2 < n && toks[i + 1].text == "(" &&
          toks[i + 2].kind == TokKind::kIdent) {
        // Attach to the nearest enclosing record scope.
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
          if (it->is_record) {
            it->guard_args.insert(toks[i + 2].text);
            break;
          }
        }
      }
      continue;
    }
    if (t.text == "(" || t.text == ")" || t.text == ";" || t.text == "}") {
      if (t.text != "}") record_pending = false;
    }
    if (t.text == "{") {
      Scope scope;
      scope.is_record = record_pending;
      record_pending = false;
      stack.push_back(scope);
      continue;
    }
    if (t.text == "}") {
      if (stack.empty()) continue;
      const Scope scope = stack.back();
      stack.pop_back();
      if (!scope.is_record) continue;
      for (const MutexMember& m : scope.mutexes) {
        if (scope.guard_args.count(m.name) != 0) continue;
        if (supp.allows(m.line, "mutex-guard")) continue;
        out.push_back(
            {file, m.line, m.col, "mutex-guard",
             "mutex member '" + m.name +
                 "' has no MEMPART_GUARDED_BY(" + m.name +
                 ") on the data it protects — the thread-safety analysis "
                 "cannot check an unannotated mutex"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: obs-span
// ---------------------------------------------------------------------------

void check_obs_span(const std::string& file, const std::vector<Token>& toks,
                    const Suppressions& supp, std::vector<Finding>& out) {
  if (file.size() < 4 || (file.compare(file.size() - 4, 4, ".cpp") != 0 &&
                          file.compare(file.size() - 3, 3, ".cc") != 0)) {
    return;
  }
  struct Method {
    std::string cls;
    std::string name;
    int line = 0;
    int col = 0;
    size_t body_begin = 0;  // token index just past '{'
    size_t body_end = 0;    // token index of matching '}'
    bool has_span = false;
  };
  std::vector<Method> methods;
  const size_t n = toks.size();
  for (size_t i = 0; i + 3 < n; ++i) {
    if (toks[i].kind != TokKind::kIdent || kSpanClasses.count(toks[i].text) == 0)
      continue;
    if (toks[i + 1].text != "::") continue;
    if (toks[i + 2].kind != TokKind::kIdent) continue;  // skips ~dtors
    if (toks[i + 3].text != "(") continue;
    if (toks[i + 2].text == toks[i].text) continue;  // constructor
    // Definitions are preceded by return-type tokens, never by call-site
    // punctuation or `return`.
    if (i > 0) {
      const Token& prev = toks[i - 1];
      if (prev.kind == TokKind::kPunct &&
          (prev.text != ">" && prev.text != "&" && prev.text != "*")) {
        continue;
      }
      if (prev.kind == TokKind::kIdent && prev.text == "return") continue;
    }
    // Match the parameter list.
    size_t j = i + 3;
    int depth = 0;
    while (j < n) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) break;
      ++j;
    }
    if (j >= n) break;
    // Scan to '{' (definition) or ';' (declaration / expression statement).
    size_t k = j + 1;
    bool is_def = false;
    while (k < n) {
      if (toks[k].text == ";") break;
      if (toks[k].text == "{") {
        is_def = true;
        break;
      }
      ++k;
    }
    if (!is_def) continue;
    Method m;
    m.cls = toks[i].text;
    m.name = toks[i + 2].text;
    m.line = toks[i].line;
    m.col = toks[i].col;
    m.body_begin = k + 1;
    int braces = 1;
    size_t b = k + 1;
    while (b < n && braces > 0) {
      if (toks[b].text == "{") ++braces;
      if (toks[b].text == "}") --braces;
      ++b;
    }
    m.body_end = b > 0 ? b - 1 : 0;
    for (size_t s = m.body_begin; s < m.body_end; ++s) {
      if (toks[s].kind == TokKind::kIdent && toks[s].text == "Span") {
        m.has_span = true;
        break;
      }
    }
    methods.push_back(m);
    i = k;  // resume after the header; bodies may define nothing matching
  }
  // Delegation closure within the file: a method without its own span passes
  // if it calls (transitively) a same-class method that has one.
  bool changed = true;
  while (changed) {
    changed = false;
    for (Method& m : methods) {
      if (m.has_span) continue;
      for (size_t s = m.body_begin; s < m.body_end && !m.has_span; ++s) {
        if (toks[s].kind != TokKind::kIdent) continue;
        if (s + 1 >= n || toks[s + 1].text != "(") continue;
        for (const Method& callee : methods) {
          if (&callee != &m && callee.cls == m.cls &&
              callee.name == toks[s].text && callee.has_span) {
            m.has_span = true;
            changed = true;
            break;
          }
        }
      }
    }
  }
  for (const Method& m : methods) {
    if (m.has_span) continue;
    if (supp.allows(m.line, "obs-span")) continue;
    out.push_back({file, m.line, m.col, "obs-span",
                   m.cls + "::" + m.name +
                       " has no obs span — public solver/engine entry points "
                       "must be traceable (obs::Span, directly or via a "
                       "delegate in this file)"});
  }
}

// ---------------------------------------------------------------------------
// Rule: simd-guard
// ---------------------------------------------------------------------------

/// Vendor intrinsic headers no file but common/simd.h may include.
const std::set<std::string, std::less<>> kIntrinsicHeaders = {
    "immintrin.h", "emmintrin.h", "xmmintrin.h", "pmmintrin.h",
    "tmmintrin.h", "smmintrin.h", "nmmintrin.h", "wmmintrin.h",
    "x86intrin.h", "x86gprintrin.h", "arm_neon.h",  "arm_sve.h"};

bool path_is_simd_abstraction(const std::string& path) {
  const std::string suffix = "common/simd.h";
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool ident_is_vendor_intrinsic(const std::string& text) {
  const auto has_prefix = [&](std::string_view prefix) {
    return text.compare(0, prefix.size(), prefix) == 0;
  };
  return has_prefix("_mm_") || has_prefix("_mm256_") || has_prefix("_mm512_") ||
         has_prefix("__m128") || has_prefix("__m256") || has_prefix("__m512");
}

/// The AVX2-wide lane wrapper may only be named in common/simd.h and in the
/// dedicated `*_avx2.cpp` translation units that are compiled with -mavx2;
/// instantiating it anywhere else emits AVX2 instructions into a TU built
/// for the baseline ISA.
bool path_is_avx2_unit(const std::string& path) {
  const std::string suffix = "_avx2.cpp";
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void check_simd_guard(const std::string& file, const FileScan& scan,
                      const Suppressions& supp, std::vector<Finding>& out) {
  if (path_is_simd_abstraction(file)) return;
  for (const Include& inc : scan.includes) {
    if (kIntrinsicHeaders.count(inc.header) == 0) continue;
    if (supp.allows(inc.line, "simd-guard")) continue;
    out.push_back({file, inc.line, inc.col, "simd-guard",
                   "raw <" + inc.header +
                       "> include outside common/simd.h — ISA headers bypass "
                       "the runtime-dispatch tiers; use the mempart::simd "
                       "lane wrappers"});
  }
  std::set<int> reported;  // one finding per line keeps the noise bounded
  for (const Token& t : scan.tokens) {
    if (t.kind != TokKind::kIdent || !ident_is_vendor_intrinsic(t.text)) {
      continue;
    }
    if (supp.allows(t.line, "simd-guard")) continue;
    if (!reported.insert(t.line).second) continue;
    out.push_back({file, t.line, t.col, "simd-guard",
                   "vendor intrinsic '" + t.text +
                       "' outside common/simd.h — use the mempart::simd lane "
                       "wrappers so dispatch and non-x86 builds keep working"});
  }
  if (path_is_avx2_unit(file)) return;
  for (const Token& t : scan.tokens) {
    if (t.kind != TokKind::kIdent || t.text != "I64x4") continue;
    if (supp.allows(t.line, "simd-guard")) continue;
    if (!reported.insert(t.line).second) continue;
    out.push_back({file, t.line, t.col, "simd-guard",
                   "I64x4 outside common/simd.h or a *_avx2.cpp unit — the "
                       "4-lane wrapper compiles to AVX2 instructions, which "
                       "only the -mavx2 kernel TUs may contain"});
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

void lint_file(const std::string& path, std::vector<Finding>& findings,
               bool& io_error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "mempart_lint: cannot read " << path << "\n";
    io_error = true;
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const FileScan scan = tokenize(text);
  const Suppressions supp(scan.pragmas, path, findings);
  if (path_in_solver_dirs(path)) {
    check_raw_arith(path, scan.tokens, supp, findings);
  }
  check_mutex_guard(path, scan.tokens, supp, findings);
  check_obs_span(path, scan.tokens, supp, findings);
  check_simd_guard(path, scan, supp, findings);
  // Must run last: an allowance is stale only if no rule above consulted it.
  supp.report_stale(findings);
}

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

void collect(const std::string& arg, std::vector<std::string>& files,
             bool& io_error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path path(arg);
  if (fs::is_directory(path, ec)) {
    std::vector<std::string> found;
    for (fs::recursive_directory_iterator it(path, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_regular_file(ec) && lintable(it->path())) {
        found.push_back(it->path().generic_string());
      }
    }
    std::sort(found.begin(), found.end());
    files.insert(files.end(), found.begin(), found.end());
    return;
  }
  if (fs::is_regular_file(path, ec)) {
    files.push_back(path.generic_string());
    return;
  }
  std::cerr << "mempart_lint: no such file or directory: " << arg << "\n";
  io_error = true;
}

/// Full JSON string escaping: quote, backslash, and every control character
/// (named escapes for the common ones, \uXXXX for the rest). File paths and
/// messages may contain anything — tabs in source excerpts, em dashes are
/// fine as raw UTF-8, but a stray control byte must not corrupt the report.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Report schema (pinned by tests/lint round-trip parse):
///   [ {"file": str, "line": int, "col": int, "rule": str, "message": str} ]
void write_report(const std::string& path, const std::vector<Finding>& findings) {
  std::ofstream out(path, std::ios::binary);
  out << "[\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "  {\"file\": \"" << json_escape(f.file)
        << "\", \"line\": " << f.line << ", \"col\": " << f.col
        << ", \"rule\": \"" << json_escape(f.rule) << "\", \"message\": \""
        << json_escape(f.message) << "\"}"
        << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

int usage() {
  std::cerr <<
      "usage: mempart_lint [--report <file.json>] [--list-rules] <path>...\n"
      "  Lints mempart sources for repo-specific invariants.\n"
      "  Paths may be files or directories (recursed for .h/.hpp/.cpp/.cc).\n"
      "  Exit: 0 clean, 1 findings, 2 usage or I/O error.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      std::cout << "raw-arith    naked % / z-value arithmetic in core+pattern "
                   "(use math_util.h helpers)\n"
                   "mutex-guard  mutex members need MEMPART_GUARDED_BY on "
                   "their data\n"
                   "obs-span     Partitioner/AccessEngine entry points need "
                   "an obs span\n"
                   "simd-guard   vendor intrinsic headers/identifiers belong "
                   "in common/simd.h only (I64x4 also in *_avx2.cpp)\n"
                   "bad-pragma   allow() pragmas must name a rule and give a "
                   "reason (not suppressible)\n"
                   "stale-pragma allow() pragmas that suppress nothing must "
                   "be deleted (not suppressible)\n";
      return 0;
    }
    if (arg == "--report") {
      if (i + 1 >= argc) return usage();
      report_path = argv[++i];
      continue;
    }
    if (!arg.empty() && arg[0] == '-') return usage();
    paths.push_back(arg);
  }
  if (paths.empty()) return usage();

  bool io_error = false;
  std::vector<std::string> files;
  for (const std::string& path : paths) collect(path, files, io_error);

  std::vector<Finding> findings;
  for (const std::string& file : files) lint_file(file, findings, io_error);

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.col < b.col;
                   });
  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ":" << f.col << ": [" << f.rule
              << "] " << f.message << "\n";
  }
  if (!report_path.empty()) write_report(report_path, findings);
  std::cout << "mempart_lint: " << files.size() << " file(s), "
            << findings.size() << " finding(s)\n";
  if (io_error) return 2;
  return findings.empty() ? 0 : 1;
}
