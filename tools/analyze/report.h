// Output side of mempart_analyze: human-readable findings, the --report
// JSON document, and the --graph DOT export of the lock-order graph.
#pragma once

#include <iosfwd>
#include <string>

#include "rules.h"

namespace mempart::analyze {

/// Prints findings in the `file:line:col: [rule] message` shape the rest of
/// the repo's tooling uses, each followed by its indented witness path.
void print_findings(const AnalysisResult& result, std::ostream& os);

/// The machine-readable report. Schema (version 1):
/// {"version":1, "tool":"mempart_analyze", "findings":[{"file","line",
///  "col","rule","message","path":[...]}], "lock_graph":{"edges":[
///  {"from","to","function","file","line","col","in_cycle"}]}}
[[nodiscard]] std::string report_json(const AnalysisResult& result);

/// Graphviz DOT for the global lock-order graph; cycle edges are drawn
/// bold red so a deadlock is visible at a glance.
[[nodiscard]] std::string lock_graph_dot(const AnalysisResult& result);

}  // namespace mempart::analyze
