#include "ir.h"

#include <algorithm>
#include <cstdint>
#include <utility>

namespace mempart::analyze {
namespace {

Json loc_to_json(const Loc& loc) {
  Json j = Json::object();
  j.set("file", Json(loc.file));
  j.set("line", Json(static_cast<std::int64_t>(loc.line)));
  j.set("col", Json(static_cast<std::int64_t>(loc.col)));
  return j;
}

Loc loc_from_json(const Json& j) {
  Loc loc;
  loc.file = j["file"].as_string();
  loc.line = static_cast<int>(j["line"].as_int());
  loc.col = static_cast<int>(j["col"].as_int());
  return loc;
}

Json strings_to_json(const std::vector<std::string>& v) {
  Json j = Json::array();
  for (const std::string& s : v) j.push_back(Json(s));
  return j;
}

std::vector<std::string> strings_from_json(const Json& j) {
  std::vector<std::string> out;
  for (const Json& item : j.items()) out.push_back(item.as_string());
  return out;
}

}  // namespace

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

void FactsDb::merge(FactsDb&& other, bool replace_files) {
  if (replace_files) {
    std::set<std::string> files;
    for (const Function& fn : other.functions) files.insert(fn.loc.file);
    std::erase_if(functions, [&](const Function& fn) {
      return files.count(fn.loc.file) != 0;
    });
  }
  for (Function& fn : other.functions) functions.push_back(std::move(fn));
  for (auto& [file, lines] : other.allows) {
    for (auto& [line, rules] : lines) {
      allows[file][line].insert(rules.begin(), rules.end());
    }
  }
  noalloc_names.insert(other.noalloc_names.begin(), other.noalloc_names.end());
  boundary_names.insert(other.boundary_names.begin(),
                        other.boundary_names.end());
}

void FactsDb::finalize() {
  const auto carries = [&](const Function& fn, const std::set<std::string>& names) {
    return names.count(fn.qualified()) != 0 || names.count(fn.name) != 0;
  };
  for (Function& fn : functions) {
    if (carries(fn, noalloc_names)) fn.noalloc = true;
    if (carries(fn, boundary_names)) fn.alloc_boundary = true;
  }
  std::stable_sort(functions.begin(), functions.end(),
                   [](const Function& a, const Function& b) {
                     if (a.loc.file != b.loc.file) return a.loc.file < b.loc.file;
                     return a.loc.line < b.loc.line;
                   });
}

bool FactsDb::allowed(const std::string& file, int line,
                      const std::string& rule) const {
  const auto file_it = allows.find(file);
  if (file_it == allows.end()) return false;
  const auto line_it = file_it->second.find(line);
  if (line_it == file_it->second.end()) return false;
  return line_it->second.count(rule) != 0;
}

Json FactsDb::to_json() const {
  Json root = Json::object();
  root.set("version", Json(static_cast<std::int64_t>(1)));
  Json fns = Json::array();
  for (const Function& fn : functions) {
    Json f = Json::object();
    f.set("name", Json(fn.name));
    f.set("cls", Json(fn.cls));
    f.set("loc", loc_to_json(fn.loc));
    f.set("cpp", Json(fn.defined_in_cpp));
    f.set("span", Json(fn.has_span));
    f.set("noalloc", Json(fn.noalloc));
    f.set("boundary", Json(fn.alloc_boundary));
    Json acquires = Json::array();
    for (const AcquireEvent& a : fn.acquires) {
      Json e = Json::object();
      e.set("lock", Json(a.lock));
      e.set("loc", loc_to_json(a.loc));
      e.set("held", strings_to_json(a.held));
      acquires.push_back(std::move(e));
    }
    f.set("acquires", std::move(acquires));
    Json calls = Json::array();
    for (const CallEvent& c : fn.calls) {
      Json e = Json::object();
      e.set("name", Json(c.name));
      e.set("qual", Json(c.qualifier));
      e.set("member", Json(c.member));
      e.set("loc", loc_to_json(c.loc));
      e.set("held", strings_to_json(c.held));
      calls.push_back(std::move(e));
    }
    f.set("calls", std::move(calls));
    Json atomics = Json::array();
    for (const AtomicEvent& a : fn.atomics) {
      Json e = Json::object();
      e.set("op", Json(static_cast<std::int64_t>(a.op)));
      e.set("relaxed", Json(a.relaxed));
      e.set("object", Json(a.object));
      e.set("loc", loc_to_json(a.loc));
      e.set("cond", Json(a.in_condition));
      e.set("cas", Json(a.cond_has_cas));
      e.set("pure", Json(a.guard_pure_control));
      atomics.push_back(std::move(e));
    }
    f.set("atomics", std::move(atomics));
    Json allocs = Json::array();
    for (const AllocEvent& a : fn.allocs) {
      Json e = Json::object();
      e.set("what", Json(a.what));
      e.set("grow", Json(a.grow_call));
      e.set("recv", Json(a.receiver));
      e.set("loc", loc_to_json(a.loc));
      allocs.push_back(std::move(e));
    }
    f.set("allocs", std::move(allocs));
    fns.push_back(std::move(f));
  }
  root.set("functions", std::move(fns));
  Json allow_list = Json::array();
  for (const auto& [file, lines] : allows) {
    for (const auto& [line, rules] : lines) {
      for (const std::string& rule : rules) {
        Json e = Json::object();
        e.set("file", Json(file));
        e.set("line", Json(static_cast<std::int64_t>(line)));
        e.set("rule", Json(rule));
        allow_list.push_back(std::move(e));
      }
    }
  }
  root.set("allows", std::move(allow_list));
  Json noalloc = Json::array();
  for (const std::string& n : noalloc_names) noalloc.push_back(Json(n));
  root.set("noalloc_names", std::move(noalloc));
  Json boundary = Json::array();
  for (const std::string& n : boundary_names) boundary.push_back(Json(n));
  root.set("boundary_names", std::move(boundary));
  return root;
}

FactsDb FactsDb::from_json(const Json& json) {
  FactsDb db;
  if (!json.is_object() || json["version"].as_int() != 1) return db;
  for (const Json& f : json["functions"].items()) {
    Function fn;
    fn.name = f["name"].as_string();
    fn.cls = f["cls"].as_string();
    fn.loc = loc_from_json(f["loc"]);
    fn.defined_in_cpp = f["cpp"].as_bool();
    fn.has_span = f["span"].as_bool();
    fn.noalloc = f["noalloc"].as_bool();
    fn.alloc_boundary = f["boundary"].as_bool();
    for (const Json& e : f["acquires"].items()) {
      AcquireEvent a;
      a.lock = e["lock"].as_string();
      a.loc = loc_from_json(e["loc"]);
      a.held = strings_from_json(e["held"]);
      fn.acquires.push_back(std::move(a));
    }
    for (const Json& e : f["calls"].items()) {
      CallEvent c;
      c.name = e["name"].as_string();
      c.qualifier = e["qual"].as_string();
      c.member = e["member"].as_bool();
      c.loc = loc_from_json(e["loc"]);
      c.held = strings_from_json(e["held"]);
      fn.calls.push_back(std::move(c));
    }
    for (const Json& e : f["atomics"].items()) {
      AtomicEvent a;
      a.op = static_cast<AtomicOp>(e["op"].as_int());
      a.relaxed = e["relaxed"].as_bool();
      a.object = e["object"].as_string();
      a.loc = loc_from_json(e["loc"]);
      a.in_condition = e["cond"].as_bool();
      a.cond_has_cas = e["cas"].as_bool();
      a.guard_pure_control = e["pure"].as_bool();
      fn.atomics.push_back(std::move(a));
    }
    for (const Json& e : f["allocs"].items()) {
      AllocEvent a;
      a.what = e["what"].as_string();
      a.grow_call = e["grow"].as_bool();
      a.receiver = e["recv"].as_string();
      a.loc = loc_from_json(e["loc"]);
      fn.allocs.push_back(std::move(a));
    }
    db.functions.push_back(std::move(fn));
  }
  for (const Json& e : json["allows"].items()) {
    db.allows[e["file"].as_string()][static_cast<int>(e["line"].as_int())]
        .insert(e["rule"].as_string());
  }
  for (const Json& n : json["noalloc_names"].items()) {
    db.noalloc_names.insert(n.as_string());
  }
  for (const Json& n : json["boundary_names"].items()) {
    db.boundary_names.insert(n.as_string());
  }
  return db;
}

}  // namespace mempart::analyze
