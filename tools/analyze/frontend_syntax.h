// Dependency-free structural frontend: C++ source -> analysis IR.
//
// A deliberately approximate parser — it tracks namespaces, records,
// function definitions, brace scopes and condition headers with a
// token-level state machine, which is enough to extract the facts the
// rules need (lock acquisitions with held-sets, calls, relaxed atomics,
// allocation constructs, obs spans, MEMPART_NOALLOC annotations) from any
// checkout with no compiler present. Where a construct is ambiguous at
// token level the extractor errs toward *not* inventing a fact; the clang
// frontend exists for the precision cases and replaces these facts
// per-TU when available.
#pragma once

#include <string>

#include "ir.h"

namespace mempart::analyze {

/// Extracts facts from one source file's text. `path` is recorded in every
/// location and drives .cpp/.h classification.
[[nodiscard]] FactsDb extract_syntax(const std::string& path,
                                     const std::string& text);

}  // namespace mempart::analyze
