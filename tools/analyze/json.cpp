#include "json.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace mempart::analyze {
namespace {

const Json& null_json() {
  static const Json kNull;
  return kNull;
}

struct Parser {
  std::string_view text;
  size_t pos = 0;
  std::string* error = nullptr;
  int depth = 0;

  bool fail(const char* message) {
    if (error != nullptr && error->empty()) {
      *error = std::string(message) + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  bool parse_value(Json& out) {
    // Clang AST dumps nest one level per expression node; 512 comfortably
    // covers real sources while still bounding runaway recursion.
    if (++depth > 512) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    bool ok = false;
    switch (c) {
      case '{':
        ok = parse_object(out);
        break;
      case '[':
        ok = parse_array(out);
        break;
      case '"': {
        std::string s;
        ok = parse_string(s);
        if (ok) out = Json(std::move(s));
        break;
      }
      case 't':
        ok = parse_literal("true");
        if (ok) out = Json(true);
        break;
      case 'f':
        ok = parse_literal("false");
        if (ok) out = Json(false);
        break;
      case 'n':
        ok = parse_literal("null");
        if (ok) out = Json();
        break;
      default:
        ok = parse_number(out);
        break;
    }
    --depth;
    return ok;
  }

  bool parse_literal(std::string_view lit) {
    if (text.compare(pos, lit.size(), lit) != 0) return fail("bad literal");
    pos += lit.size();
    return true;
  }

  bool parse_number(Json& out) {
    const size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      ++pos;
    }
    if (pos == start) return fail("expected value");
    double value = 0;
    const auto result =
        std::from_chars(text.data() + start, text.data() + pos, value);
    if (result.ec != std::errc()) return fail("bad number");
    out = Json(value);
    return true;
  }

  bool parse_hex4(unsigned& out) {
    out = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos >= text.size()) return fail("bad \\u escape");
      const char c = text[pos++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape");
      }
    }
    return true;
  }

  void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    if (text[pos] != '"') return fail("expected string");
    ++pos;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c != '\\') {
        out += c;
        ++pos;
        continue;
      }
      ++pos;
      if (pos >= text.size()) return fail("dangling escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF && pos + 1 < text.size() &&
              text[pos] == '\\' && text[pos + 1] == 'u') {
            pos += 2;
            unsigned low = 0;
            if (!parse_hex4(low)) return false;
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_object(Json& out) {
    ++pos;  // '{'
    out = Json::object();
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos >= text.size() || !parse_string(key)) {
        return fail("expected object key");
      }
      skip_ws();
      if (pos >= text.size() || text[pos] != ':') return fail("expected ':'");
      ++pos;
      Json value;
      if (!parse_value(value)) return false;
      out.set(std::move(key), std::move(value));
      skip_ws();
      if (pos >= text.size()) return fail("unterminated object");
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      if (text[pos] == '}') {
        ++pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Json& out) {
    ++pos;  // '['
    out = Json::array();
    skip_ws();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      Json value;
      if (!parse_value(value)) return false;
      out.push_back(std::move(value));
      skip_ws();
      if (pos >= text.size()) return fail("unterminated array");
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      if (text[pos] == ']') {
        ++pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }
};

}  // namespace

const Json& Json::operator[](std::string_view key) const {
  const auto it = object_.find(key);
  return it == object_.end() ? null_json() : it->second;
}

const Json& Json::at(size_t index) const {
  return index < array_.size() ? array_[index] : null_json();
}

size_t Json::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  return 0;
}

bool Json::contains(std::string_view key) const {
  return object_.find(key) != object_.end();
}

std::string Json::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto pad = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber: {
      // Integers (the overwhelmingly common case: lines, columns, counts)
      // print without a fractional part.
      const auto i = static_cast<std::int64_t>(number_);
      if (static_cast<double>(i) == number_) {
        out += std::to_string(i);
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
        out += buf;
      }
      break;
    }
    case Kind::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out += ',';
        first = false;
        pad(depth + 1);
        item.dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) pad(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        pad(depth + 1);
        out += '"';
        out += escape(key);
        out += "\": ";
        value.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text, std::string* error) {
  Parser parser{text, 0, error, 0};
  Json out;
  if (!parser.parse_value(out)) return Json();
  parser.skip_ws();
  if (parser.pos != text.size()) {
    parser.fail("trailing garbage");
    return Json();
  }
  return out;
}

}  // namespace mempart::analyze
