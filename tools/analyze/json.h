// Minimal JSON value tree for mempart_analyze.
//
// The analyzer consumes three JSON dialects — compile_commands.json, the
// (very large) clang -ast-dump=json output, and its own facts-cache files —
// and emits one (the --report findings array). All four go through this
// self-contained recursive-descent parser/writer so the tool keeps the same
// zero-dependency contract as mempart_lint: it must build and run before
// any mempart library exists, with nothing but the standard library.
//
// Intentionally small surface: parse(), a tagged Value with checked
// accessors that return fallbacks instead of throwing (an unexpected AST
// shape must degrade to "no fact extracted", never crash the analyzer),
// and dump() for cache/report writing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mempart::analyze {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  explicit Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Json(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit Json(std::int64_t n)
      : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  explicit Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }

  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return kind_ == Kind::kBool ? bool_ : fallback;
  }
  [[nodiscard]] double as_number(double fallback = 0) const {
    return kind_ == Kind::kNumber ? number_ : fallback;
  }
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const {
    return kind_ == Kind::kNumber ? static_cast<std::int64_t>(number_)
                                  : fallback;
  }
  [[nodiscard]] const std::string& as_string() const { return string_; }

  /// Object member access; returns a shared null for absent keys so lookup
  /// chains (`node["loc"]["line"]`) stay safe on any shape.
  [[nodiscard]] const Json& operator[](std::string_view key) const;
  /// Array element access with the same absent-is-null contract.
  [[nodiscard]] const Json& at(size_t index) const;
  [[nodiscard]] size_t size() const;
  [[nodiscard]] bool contains(std::string_view key) const;

  [[nodiscard]] const std::vector<Json>& items() const { return array_; }
  [[nodiscard]] const std::map<std::string, Json, std::less<>>& members()
      const {
    return object_;
  }

  void push_back(Json value) {
    kind_ = Kind::kArray;
    array_.push_back(std::move(value));
  }
  void set(std::string key, Json value) {
    kind_ = Kind::kObject;
    object_[std::move(key)] = std::move(value);
  }

  /// Serializes; `indent` > 0 pretty-prints (used by --report so the CI
  /// artifact diffs cleanly).
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parses `text`. On grammar errors returns null and, when `error` is
  /// non-null, stores a byte-offset diagnostic.
  static Json parse(std::string_view text, std::string* error = nullptr);

  /// Escapes `s` for embedding in a JSON string literal (no quotes added).
  static std::string escape(std::string_view s);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json, std::less<>> object_;
};

}  // namespace mempart::analyze
