#include "frontend_clang.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

namespace mempart::analyze {
namespace {

const std::set<std::string, std::less<>> kScopedGuards = {
    "MutexLock",   "UniqueLock",  "lock_guard",
    "unique_lock", "scoped_lock", "shared_lock"};

const std::set<std::string, std::less<>> kGrowCalls = {
    "push_back", "emplace_back", "emplace",        "insert", "append",
    "resize",    "reserve",      "assign",         "push_front",
    "emplace_front"};

const std::set<std::string, std::less<>> kAtomicOps = {
    "load",      "store",    "exchange",
    "fetch_add", "fetch_sub", "fetch_or",
    "fetch_and", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong"};

AtomicOp classify_atomic(const std::string& name) {
  if (name == "load") return AtomicOp::kLoad;
  if (name == "store") return AtomicOp::kStore;
  if (name.rfind("compare_exchange", 0) == 0) return AtomicOp::kCas;
  return AtomicOp::kRmw;
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// AST JSON -> IR lowering
// ---------------------------------------------------------------------------

/// Walks the dumped AST in serialization order. Clang's JSON dumper delta-
/// encodes source locations — `file` and `line` are omitted whenever they
/// match the previously *printed* location — so the walker replays every
/// location field in the order the dumper wrote them (loc, range.begin,
/// range.end, then children) to keep an accurate cursor.
class Lowerer {
 public:
  explicit Lowerer(std::string project_root)
      : project_root_(std::move(project_root)) {}

  FactsDb take(const Json& tu) {
    walk_decl(tu);
    return std::move(db_);
  }

 private:
  struct CondCtx {
    bool in_condition = false;
    bool has_cas = false;
    bool pure_guard = false;
  };

  // --- location cursor ----------------------------------------------------

  void apply_bare_loc(const Json& loc) {
    if (!loc.is_object()) return;
    if (loc["spellingLoc"].is_object() || loc["expansionLoc"].is_object()) {
      apply_bare_loc(loc["spellingLoc"]);
      apply_bare_loc(loc["expansionLoc"]);  // expansion is the user-code site
      return;
    }
    if (loc["file"].is_string()) file_ = loc["file"].as_string();
    if (loc["line"].is_number()) line_ = static_cast<int>(loc["line"].as_int());
    if (loc["col"].is_number()) col_ = static_cast<int>(loc["col"].as_int());
  }

  /// Replays a node's location fields; returns the node's own position
  /// (its `loc` when present, else the start of its range).
  Loc enter(const Json& node) {
    Loc self;
    const bool has_loc = node["loc"].is_object();
    if (has_loc) {
      apply_bare_loc(node["loc"]);
      self = cursor();
    }
    apply_bare_loc(node["range"]["begin"]);
    if (!has_loc) self = cursor();
    apply_bare_loc(node["range"]["end"]);
    return self;
  }

  [[nodiscard]] Loc cursor() const {
    Loc loc;
    loc.file = relativize(file_);
    loc.line = line_;
    loc.col = col_;
    return loc;
  }

  [[nodiscard]] std::string relativize(const std::string& path) const {
    if (!project_root_.empty() && path.rfind(project_root_, 0) == 0) {
      std::size_t cut = project_root_.size();
      if (cut < path.size() && path[cut] == '/') ++cut;
      return path.substr(cut);
    }
    return path;
  }

  [[nodiscard]] bool in_project(const std::string& file) const {
    if (file.empty()) return false;
    if (project_root_.empty()) return file[0] != '/';
    return file[0] != '/';  // relativize() stripped the root already
  }

  // --- declarations -------------------------------------------------------

  void walk_decl(const Json& node) {
    if (!node.is_object()) return;
    const Loc self = enter(node);
    const std::string& kind = node["kind"].as_string();
    const std::string& name = node["name"].as_string();

    if (ends_with(kind, "RecordDecl") ||
        kind == "ClassTemplateSpecializationDecl") {
      if (!name.empty()) {
        record_names_[node["id"].as_string()] = name;
        records_.push_back(name);
        for (const Json& child : node["inner"].items()) walk_decl(child);
        records_.pop_back();
        return;
      }
    } else if (kind == "FunctionDecl" || kind == "CXXMethodDecl" ||
               kind == "CXXConstructorDecl" || kind == "CXXDestructorDecl" ||
               kind == "CXXConversionDecl") {
      lower_function(node, self, kind, name);
      return;
    }
    for (const Json& child : node["inner"].items()) walk_decl(child);
  }

  void lower_function(const Json& node, const Loc& self,
                      const std::string& kind, const std::string& name) {
    const Json* body = nullptr;
    for (const Json& child : node["inner"].items()) {
      if (child["kind"].as_string() == "CompoundStmt") body = &child;
    }
    Function fn;
    fn.name = name;
    if (!records_.empty()) {
      std::string cls;
      for (const std::string& r : records_) {
        if (!cls.empty()) cls += "::";
        cls += r;
      }
      fn.cls = cls;
    } else if (kind != "FunctionDecl") {
      // Out-of-line method definition: the declaration context is not the
      // lexical parent, so recover the class through the record id map.
      const auto it =
          record_names_.find(node["parentDeclContextId"].as_string());
      if (it != record_names_.end()) fn.cls = it->second;
    }
    fn.loc = self;
    fn.defined_in_cpp =
        ends_with(self.file, ".cpp") || ends_with(self.file, ".cc");

    if (body == nullptr || !in_project(self.file)) {
      // Declarations and out-of-project definitions still need their
      // location replayed so sibling deltas stay correct.
      for (const Json& child : node["inner"].items()) walk_decl(child);
      return;
    }
    fn_ = &fn;
    lock_scopes_.assign(1, {});
    CondCtx ctx;
    // Parameters and attributes precede the body in serialization order.
    for (const Json& child : node["inner"].items()) {
      if (&child == body) {
        walk_stmt(child, ctx);
      } else {
        replay_only(child);
      }
    }
    lock_scopes_.clear();
    fn_ = nullptr;
    db_.functions.push_back(std::move(fn));
  }

  /// Visits a subtree purely to keep the location cursor in sync.
  void replay_only(const Json& node) {
    if (!node.is_object()) return;
    enter(node);
    for (const Json& child : node["inner"].items()) replay_only(child);
  }

  // --- statements / expressions ------------------------------------------

  [[nodiscard]] std::vector<std::string> held() const {
    std::vector<std::string> out;
    for (const auto& scope : lock_scopes_) {
      out.insert(out.end(), scope.begin(), scope.end());
    }
    return out;
  }

  [[nodiscard]] std::string lock_identity(const std::string& expr) const {
    const std::string owner =
        fn_ != nullptr && !fn_->cls.empty() ? fn_->cls : fn_->loc.file;
    return owner + "::" + expr;
  }

  /// Reconstructs a readable receiver expression ("shard.mutex") from a
  /// DeclRefExpr / MemberExpr chain; wrappers (casts, parens) pass through.
  std::string expr_text(const Json& node) {
    if (!node.is_object()) return "";
    const std::string& kind = node["kind"].as_string();
    if (kind == "DeclRefExpr") {
      return node["referencedDecl"]["name"].as_string();
    }
    if (kind == "CXXThisExpr") return "";
    if (kind == "MemberExpr") {
      const std::string base = expr_text(node["inner"].at(0));
      std::string name = node["name"].as_string();
      return base.empty() ? name : base + "." + name;
    }
    if (node["inner"].size() == 1) return expr_text(node["inner"].at(0));
    return "";
  }

  static bool subtree_mentions(const Json& node, std::string_view needle) {
    if (!node.is_object()) return false;
    if (node["name"].as_string().rfind(needle) == 0) return true;
    if (node["referencedDecl"]["name"].as_string().rfind(needle) == 0) {
      return true;
    }
    for (const Json& child : node["inner"].items()) {
      if (subtree_mentions(child, needle)) return true;
    }
    return false;
  }

  static bool is_pure_control(const Json& node) {
    const std::string& kind = node["kind"].as_string();
    if (kind == "BreakStmt" || kind == "ContinueStmt") return true;
    if (kind == "ReturnStmt") return node["inner"].size() == 0;
    if (kind == "CompoundStmt" && node["inner"].size() == 1) {
      const std::string& inner_kind = node["inner"].at(0)["kind"].as_string();
      if (inner_kind == "BreakStmt" || inner_kind == "ContinueStmt") {
        return true;
      }
      if (inner_kind == "ReturnStmt") {
        return node["inner"].at(0)["inner"].size() == 0;
      }
    }
    return false;
  }

  void walk_stmt(const Json& node, const CondCtx& ctx) {
    if (!node.is_object() || node.is_null()) return;
    const Loc self = enter(node);
    const std::string& kind = node["kind"].as_string();

    if (kind == "CompoundStmt") {
      lock_scopes_.emplace_back();
      for (const Json& child : node["inner"].items()) walk_stmt(child, ctx);
      lock_scopes_.pop_back();
      return;
    }
    if (kind == "IfStmt" || kind == "WhileStmt" || kind == "SwitchStmt" ||
        kind == "DoStmt" || kind == "ForStmt") {
      walk_control(node, kind, ctx);
      return;
    }
    if (kind == "DeclStmt") {
      for (const Json& child : node["inner"].items()) {
        if (child["kind"].as_string() == "VarDecl") {
          lower_var_decl(child, ctx);
        } else {
          walk_stmt(child, ctx);
        }
      }
      return;
    }
    if (kind == "CXXMemberCallExpr") {
      lower_member_call(node, self, ctx);
      return;
    }
    if (kind == "CallExpr") {
      lower_free_call(node, self, ctx);
      return;
    }
    if (kind == "CXXNewExpr") {
      fn_->allocs.push_back({"new", false, "", self});
      for (const Json& child : node["inner"].items()) walk_stmt(child, ctx);
      return;
    }
    if (kind == "CXXConstructExpr" &&
        node["type"]["qualType"].as_string().find("Span") !=
            std::string::npos) {
      fn_->has_span = true;
    }
    for (const Json& child : node["inner"].items()) walk_stmt(child, ctx);
  }

  void walk_control(const Json& node, const std::string& kind,
                    const CondCtx& outer) {
    const auto& children = node["inner"].items();
    // Child layout: IfStmt/WhileStmt/SwitchStmt lead with the condition,
    // DoStmt ends with it, ForStmt is [init, cond-decl, cond, inc, body]
    // (absent parts dumped as empty objects). Everything that is not the
    // trailing body is treated as condition region for ForStmt.
    std::size_t cond_begin = 0;
    std::size_t cond_end = 0;  // exclusive
    if (children.size() > 0) {
      if (kind == "DoStmt") {
        cond_begin = children.size() - 1;
        cond_end = children.size();
      } else if (kind == "ForStmt") {
        cond_end = children.size() > 1 ? children.size() - 1 : 0;
      } else {
        cond_end = 1;
      }
    }
    CondCtx cond_ctx;
    cond_ctx.in_condition = true;
    for (std::size_t i = cond_begin; i < cond_end; ++i) {
      if (subtree_mentions(children[i], "compare_exchange")) {
        cond_ctx.has_cas = true;
      }
    }
    // The guarded statement: for if/while/for it is the child after the
    // condition; `if (relaxed-load) continue;` style guards are the pure-
    // control pattern the atomic audit approves.
    if (kind == "IfStmt" && children.size() >= 2) {
      cond_ctx.pure_guard = is_pure_control(children[cond_end]);
    } else if ((kind == "WhileStmt" || kind == "ForStmt") &&
               children.size() >= 1) {
      cond_ctx.pure_guard = is_pure_control(children[children.size() - 1]);
    }
    for (std::size_t i = 0; i < children.size(); ++i) {
      const bool in_cond = i >= cond_begin && i < cond_end;
      walk_stmt(children[i], in_cond ? cond_ctx : outer);
    }
  }

  void lower_var_decl(const Json& node, const CondCtx& ctx) {
    const Loc self = enter(node);
    const std::string& type = node["type"]["qualType"].as_string();
    bool is_guard = false;
    for (const std::string& guard : kScopedGuards) {
      if (type.find(guard) != std::string::npos) is_guard = true;
    }
    if (type.find("Span") != std::string::npos) fn_->has_span = true;
    if (!is_guard) {
      for (const Json& child : node["inner"].items()) walk_stmt(child, ctx);
      return;
    }
    // Guard variable: each constructor argument names a lock.
    const Json* ctor = nullptr;
    for (const Json& child : node["inner"].items()) {
      if (child["kind"].as_string() == "CXXConstructExpr") ctor = &child;
    }
    if (ctor == nullptr) return;
    enter(*ctor);
    for (const Json& arg : (*ctor)["inner"].items()) {
      replay_only(arg);
      const std::string expr = expr_text(arg);
      if (expr.empty()) continue;
      AcquireEvent acquire;
      acquire.lock = lock_identity(expr);
      acquire.loc = self;
      acquire.held = held();
      lock_scopes_.back().push_back(acquire.lock);
      fn_->acquires.push_back(std::move(acquire));
    }
  }

  void lower_member_call(const Json& node, const Loc& self,
                         const CondCtx& ctx) {
    const Json& callee = node["inner"].at(0);
    // Callee is a MemberExpr, possibly under casts.
    const Json* member = &callee;
    while (member->is_object() &&
           member->operator[]("kind").as_string() != "MemberExpr" &&
           member->operator[]("inner").size() >= 1) {
      member = &member->operator[]("inner").at(0);
    }
    const std::string& name = member->operator[]("name").as_string();
    const std::string receiver =
        member->operator[]("inner").size() >= 1
            ? expr_text(member->operator[]("inner").at(0))
            : "";

    if (kAtomicOps.count(name) != 0) {
      AtomicEvent atomic;
      atomic.op = classify_atomic(name);
      atomic.object = receiver;
      atomic.loc = self;
      atomic.in_condition = ctx.in_condition;
      atomic.cond_has_cas = ctx.has_cas;
      atomic.guard_pure_control = ctx.pure_guard;
      for (std::size_t i = 1; i < node["inner"].size(); ++i) {
        if (subtree_mentions(node["inner"].at(i), "memory_order_relaxed")) {
          atomic.relaxed = true;
        }
      }
      fn_->atomics.push_back(std::move(atomic));
    } else if (kGrowCalls.count(name) != 0) {
      fn_->allocs.push_back({name, true, receiver, self});
    } else if (name == "lock" && !receiver.empty()) {
      AcquireEvent acquire;
      acquire.lock = lock_identity(receiver);
      acquire.loc = self;
      acquire.held = held();
      lock_scopes_.back().push_back(acquire.lock);
      fn_->acquires.push_back(std::move(acquire));
    } else if (name == "unlock" && !receiver.empty()) {
      const std::string identity = lock_identity(receiver);
      for (auto scope = lock_scopes_.rbegin(); scope != lock_scopes_.rend();
           ++scope) {
        const auto it = std::find(scope->begin(), scope->end(), identity);
        if (it != scope->end()) {
          scope->erase(it);
          break;
        }
      }
    }
    if (name == "make_unique" || name == "make_shared") {
      fn_->allocs.push_back({name, false, "", self});
    }
    if (!name.empty()) {
      CallEvent call;
      call.name = name;
      call.qualifier = receiver;
      call.member = true;
      call.loc = self;
      call.held = held();
      fn_->calls.push_back(std::move(call));
    }
    for (std::size_t i = 0; i < node["inner"].size(); ++i) {
      if (i == 0) {
        replay_only(node["inner"].at(i));
      } else {
        walk_stmt(node["inner"].at(i), ctx);
      }
    }
  }

  void lower_free_call(const Json& node, const Loc& self, const CondCtx& ctx) {
    const Json* callee = node["inner"].size() >= 1 ? &node["inner"].at(0)
                                                   : nullptr;
    std::string name;
    const Json* probe = callee;
    while (probe != nullptr && probe->is_object()) {
      if (probe->operator[]("kind").as_string() == "DeclRefExpr") {
        name = probe->operator[]("referencedDecl")["name"].as_string();
        break;
      }
      if (probe->operator[]("inner").size() < 1) break;
      probe = &probe->operator[]("inner").at(0);
    }
    if (name == "make_unique" || name == "make_shared") {
      fn_->allocs.push_back({name, false, "", self});
    } else if (!name.empty()) {
      CallEvent call;
      call.name = name;
      call.loc = self;
      call.held = held();
      fn_->calls.push_back(std::move(call));
    }
    for (const Json& child : node["inner"].items()) walk_stmt(child, ctx);
  }

  std::string project_root_;
  FactsDb db_;
  std::string file_;
  int line_ = 0;
  int col_ = 0;
  std::vector<std::string> records_;
  std::map<std::string, std::string> record_names_;
  Function* fn_ = nullptr;
  std::vector<std::vector<std::string>> lock_scopes_;
};

// ---------------------------------------------------------------------------
// compile_commands.json + clang driving
// ---------------------------------------------------------------------------

std::string shell_quote(const std::string& arg) {
  std::string out = "'";
  for (const char c : arg) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out.push_back(c);
    }
  }
  out += "'";
  return out;
}

std::vector<std::string> split_command(const std::string& command) {
  std::vector<std::string> args;
  std::string cur;
  char quote = 0;
  for (std::size_t i = 0; i < command.size(); ++i) {
    const char c = command[i];
    if (quote != 0) {
      if (c == quote) {
        quote = 0;
      } else if (c == '\\' && quote == '"' && i + 1 < command.size()) {
        cur.push_back(command[++i]);
      } else {
        cur.push_back(c);
      }
    } else if (c == '\'' || c == '"') {
      quote = c;
    } else if (c == ' ' || c == '\t') {
      if (!cur.empty()) args.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\\' && i + 1 < command.size()) {
      cur.push_back(command[++i]);
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) args.push_back(std::move(cur));
  return args;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

std::string cache_key_hex(std::uint64_t key) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[key & 0xF];
    key >>= 4;
  }
  return out;
}

/// Rewrites one compile command into the AST-dump invocation: same flags,
/// same directory, but syntax-only with the JSON dumper and no codegen
/// outputs.
std::string ast_dump_command(const CompileCommand& command,
                             const std::string& clang_binary) {
  std::vector<std::string> args;
  args.push_back(clang_binary);
  for (std::size_t i = 1; i < command.args.size(); ++i) {
    const std::string& arg = command.args[i];
    if (arg == "-c") continue;
    if (arg == "-o" || arg == "-MF" || arg == "-MT" || arg == "-MQ") {
      ++i;
      continue;
    }
    if (arg == "-MD" || arg == "-MMD") continue;
    args.push_back(arg);
  }
  args.push_back("-fsyntax-only");
  args.push_back("-Xclang");
  args.push_back("-ast-dump=json");
  args.push_back("-Wno-everything");
  std::string shell = "cd " + shell_quote(command.directory) + " && ";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) shell += " ";
    shell += shell_quote(args[i]);
  }
  shell += " 2>/dev/null";
  return shell;
}

bool run_and_capture(const std::string& shell_command, std::string& out) {
  FILE* pipe = popen(shell_command.c_str(), "r");
  if (pipe == nullptr) return false;
  char buffer[1 << 16];
  std::size_t got = 0;
  while ((got = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    out.append(buffer, got);
  }
  return pclose(pipe) == 0;
}

}  // namespace

bool load_compile_commands(const std::string& path,
                           std::vector<CompileCommand>& out,
                           std::string& error) {
  std::string text;
  if (!read_file(path, text)) {
    error = "cannot read compilation database: " + path;
    return false;
  }
  std::string parse_error;
  const Json db = Json::parse(text, &parse_error);
  if (!db.is_array()) {
    error = "not a compilation database (expected a JSON array): " + path +
            (parse_error.empty() ? "" : " — " + parse_error);
    return false;
  }
  for (const Json& entry : db.items()) {
    CompileCommand command;
    command.file = entry["file"].as_string();
    command.directory = entry["directory"].as_string();
    if (entry["arguments"].is_array()) {
      for (const Json& arg : entry["arguments"].items()) {
        command.args.push_back(arg.as_string());
      }
    } else {
      command.args = split_command(entry["command"].as_string());
    }
    if (command.file.empty() || command.args.empty()) continue;
    out.push_back(std::move(command));
  }
  if (out.empty()) {
    error = "compilation database has no usable entries: " + path;
    return false;
  }
  return true;
}

FactsDb lower_clang_tu(const Json& ast, const std::string& project_root) {
  return Lowerer(project_root).take(ast);
}

bool run_clang_frontend(const ClangFrontendOptions& options, FactsDb& db,
                        std::ostream& diag, std::string& error) {
  std::vector<CompileCommand> commands;
  if (!load_compile_commands(options.compdb_path, commands, error)) {
    return false;
  }
  if (!options.cache_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.cache_dir, ec);
  }
  for (const CompileCommand& command : commands) {
    std::string full = command.file;
    if (!full.empty() && full[0] != '/') {
      full = command.directory + "/" + full;
    }
    if (!options.filter.empty() &&
        full.find(options.filter) == std::string::npos) {
      continue;
    }
    std::string source;
    if (!read_file(full, source)) {
      diag << "mempart_analyze: skipping unreadable TU " << full << "\n";
      continue;
    }
    std::string joined;
    for (const std::string& arg : command.args) joined += arg + " ";
    const std::uint64_t key = fnv1a(joined, fnv1a(source));
    const std::string cache_path =
        options.cache_dir.empty()
            ? std::string()
            : options.cache_dir + "/" + cache_key_hex(key) + ".facts.json";

    if (!cache_path.empty()) {
      std::string cached;
      if (read_file(cache_path, cached)) {
        FactsDb facts = FactsDb::from_json(Json::parse(cached));
        if (!facts.functions.empty()) {
          if (options.verbose) {
            diag << "mempart_analyze: facts cache hit for " << command.file
                 << "\n";
          }
          db.merge(std::move(facts), /*replace_files=*/true);
          continue;
        }
      }
    }

    const std::string shell = ast_dump_command(command, options.clang_binary);
    std::string dump;
    if (!run_and_capture(shell, dump) || dump.empty()) {
      diag << "mempart_analyze: clang AST dump failed for " << command.file
           << " (continuing with remaining TUs)\n";
      continue;
    }
    std::string parse_error;
    const Json ast = Json::parse(dump, &parse_error);
    if (!ast.is_object()) {
      diag << "mempart_analyze: unparsable AST JSON for " << command.file
           << (parse_error.empty() ? "" : ": " + parse_error) << "\n";
      continue;
    }
    FactsDb facts = lower_clang_tu(ast, options.project_root);
    if (!cache_path.empty()) {
      std::ofstream out(cache_path, std::ios::binary | std::ios::trunc);
      if (out) out << facts.to_json().dump(0) << "\n";
    }
    if (options.verbose) {
      diag << "mempart_analyze: lowered " << facts.functions.size()
           << " functions from " << command.file << "\n";
    }
    db.merge(std::move(facts), /*replace_files=*/true);
  }
  return true;
}

}  // namespace mempart::analyze
