#include "report.h"

#include <cstdint>
#include <ostream>

#include "json.h"

namespace mempart::analyze {

void print_findings(const AnalysisResult& result, std::ostream& os) {
  for (const Finding& finding : result.findings) {
    os << finding.file << ":" << finding.line << ":" << finding.col << ": ["
       << finding.rule << "] " << finding.message << "\n";
    for (const std::string& step : finding.path) {
      os << "    " << step << "\n";
    }
  }
}

std::string report_json(const AnalysisResult& result) {
  Json root = Json::object();
  root.set("version", Json(static_cast<std::int64_t>(1)));
  root.set("tool", Json(std::string("mempart_analyze")));
  Json findings = Json::array();
  for (const Finding& finding : result.findings) {
    Json f = Json::object();
    f.set("file", Json(finding.file));
    f.set("line", Json(static_cast<std::int64_t>(finding.line)));
    f.set("col", Json(static_cast<std::int64_t>(finding.col)));
    f.set("rule", Json(finding.rule));
    f.set("message", Json(finding.message));
    Json path = Json::array();
    for (const std::string& step : finding.path) path.push_back(Json(step));
    f.set("path", std::move(path));
    findings.push_back(std::move(f));
  }
  root.set("findings", std::move(findings));
  Json graph = Json::object();
  Json edges = Json::array();
  for (const LockEdge& edge : result.lock_edges) {
    Json e = Json::object();
    e.set("from", Json(edge.from));
    e.set("to", Json(edge.to));
    e.set("function", Json(edge.function));
    e.set("file", Json(edge.loc.file));
    e.set("line", Json(static_cast<std::int64_t>(edge.loc.line)));
    e.set("col", Json(static_cast<std::int64_t>(edge.loc.col)));
    e.set("in_cycle", Json(edge.in_cycle));
    edges.push_back(std::move(e));
  }
  graph.set("edges", std::move(edges));
  root.set("lock_graph", std::move(graph));
  return root.dump(2) + "\n";
}

std::string lock_graph_dot(const AnalysisResult& result) {
  // Node and label text goes through the JSON escaper: DOT double-quoted
  // strings accept the same \" and \\ escapes, and lock identities can
  // contain arbitrary expression text.
  std::string dot;
  dot += "digraph lock_order {\n";
  dot += "  rankdir=LR;\n";
  dot += "  node [shape=box, fontname=\"monospace\"];\n";
  for (const LockEdge& edge : result.lock_edges) {
    dot += "  \"" + Json::escape(edge.from) + "\" -> \"" +
           Json::escape(edge.to) + "\" [label=\"" +
           Json::escape(edge.function + "\n" + edge.loc.str()) + "\"";
    if (edge.in_cycle) {
      dot += ", color=red, penwidth=2.0";
    }
    dot += "];\n";
  }
  dot += "}\n";
  return dot;
}

}  // namespace mempart::analyze
