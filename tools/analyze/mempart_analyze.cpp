// mempart_analyze — whole-program concurrency & hot-path static analysis.
//
// Where mempart_lint checks one token stream at a time, this tool builds a
// program-wide fact base (functions, lock acquisitions with held-sets,
// calls, relaxed atomics, allocations, obs spans) and runs four semantic
// rules over it:
//
//   lock-order     global lock acquisition graph; cycles are reported with
//                  a witness path and exportable as DOT (--graph)
//   atomic-audit   memory_order_relaxed is allowed only in approved
//                  counter / CAS-retry / seqlock patterns; a relaxed load
//                  guarding mutation of non-atomic state is a finding
//   noalloc        nothing reachable from a MEMPART_NOALLOC function may
//                  allocate, up to MEMPART_ALLOC_BOUNDARY audit points
//   span-coverage  Partitioner/AccessEngine entry points must reach an obs
//                  span through the cross-TU call graph
//
// Two frontends produce the same IR: the dependency-free structural
// frontend (default — works on any checkout, used by the ctest pin) and
// the clang AST-JSON frontend (--frontend clang, used in CI for compiler-
// grade precision). See docs/STATIC_ANALYSIS.md.
//
// Exit codes: 0 clean, 1 findings, 2 usage or environment error.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "frontend_clang.h"
#include "frontend_syntax.h"
#include "report.h"
#include "rules.h"

namespace {

using mempart::analyze::AnalysisResult;
using mempart::analyze::ClangFrontendOptions;
using mempart::analyze::CompileCommand;
using mempart::analyze::FactsDb;

void usage(std::ostream& os) {
  os << "usage: mempart_analyze [options] [path...]\n"
        "\n"
        "Whole-program static analysis for the mempart codebase. Paths are\n"
        "files or directories scanned with the structural frontend\n"
        "(default: src).\n"
        "\n"
        "options:\n"
        "  --compdb FILE    compile_commands.json for the clang frontend\n"
        "  --frontend MODE  syntax | clang | auto (default: syntax; clang\n"
        "                   needs --compdb, auto uses clang when available)\n"
        "  --clang BIN      clang driver to invoke (default: clang++)\n"
        "  --ast-cache DIR  per-TU facts cache keyed on source+command hash\n"
        "  --filter STR     only clang-analyze TUs whose path contains STR\n"
        "  --rule NAME      run one rule (repeatable; default: all)\n"
        "  --report FILE    write findings + lock graph as JSON\n"
        "  --graph FILE     write the lock-order graph as Graphviz DOT\n"
        "  --list-rules     print rule names and one-line summaries\n"
        "  --verbose        narrate frontend progress on stderr\n"
        "\n"
        "exit: 0 no findings, 1 findings, 2 bad invocation/environment\n";
}

void list_rules() {
  std::cout
      << "lock-order     cycles in the global lock acquisition graph "
         "(deadlock)\n"
         "atomic-audit   memory_order_relaxed outside approved "
         "counter/CAS/seqlock patterns\n"
         "noalloc        allocation reachable from a MEMPART_NOALLOC "
         "function\n"
         "span-coverage  solver/engine entry point reaches no obs span in "
         "its call graph\n";
}

bool analyzable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

bool hidden_or_build(const std::filesystem::path& p) {
  for (const auto& part : p) {
    const std::string name = part.string();
    if (name == "build" || (name.size() > 1 && name[0] == '.')) return true;
  }
  return false;
}

bool clang_available(const std::string& binary) {
  const std::string probe =
      "command -v '" + binary + "' >/dev/null 2>&1";
  return std::system(probe.c_str()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::vector<std::string> rules;
  std::string compdb;
  std::string frontend = "syntax";
  std::string report_path;
  std::string graph_path;
  ClangFrontendOptions clang_options;
  bool verbose = false;

  const auto need_value = [&](int& i, const std::string& flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "mempart_analyze: " << flag << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    }
    if (arg == "--list-rules") {
      list_rules();
      return 0;
    }
    if (arg == "--verbose") {
      verbose = true;
      continue;
    }
    const char* value = nullptr;
    if (arg == "--compdb") {
      if ((value = need_value(i, arg)) == nullptr) return 2;
      compdb = value;
    } else if (arg == "--frontend") {
      if ((value = need_value(i, arg)) == nullptr) return 2;
      frontend = value;
    } else if (arg == "--clang") {
      if ((value = need_value(i, arg)) == nullptr) return 2;
      clang_options.clang_binary = value;
    } else if (arg == "--ast-cache") {
      if ((value = need_value(i, arg)) == nullptr) return 2;
      clang_options.cache_dir = value;
    } else if (arg == "--filter") {
      if ((value = need_value(i, arg)) == nullptr) return 2;
      clang_options.filter = value;
    } else if (arg == "--rule") {
      if ((value = need_value(i, arg)) == nullptr) return 2;
      rules.emplace_back(value);
    } else if (arg == "--report") {
      if ((value = need_value(i, arg)) == nullptr) return 2;
      report_path = value;
    } else if (arg == "--graph") {
      if ((value = need_value(i, arg)) == nullptr) return 2;
      graph_path = value;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "mempart_analyze: unknown option " << arg << "\n";
      usage(std::cerr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (frontend != "syntax" && frontend != "clang" && frontend != "auto") {
    std::cerr << "mempart_analyze: --frontend must be syntax, clang or auto\n";
    return 2;
  }
  if (frontend == "clang" && compdb.empty()) {
    std::cerr << "mempart_analyze: --frontend clang requires --compdb\n";
    return 2;
  }
  for (const std::string& rule : rules) {
    const auto& known = mempart::analyze::rule_names();
    if (std::find(known.begin(), known.end(), rule) == known.end()) {
      std::cerr << "mempart_analyze: unknown rule '" << rule
                << "' (see --list-rules)\n";
      return 2;
    }
  }
  if (paths.empty()) paths.emplace_back("src");

  // Validate the compilation database up front: a bad --compdb path is an
  // invocation error (exit 2), not an empty analysis.
  if (!compdb.empty()) {
    std::vector<CompileCommand> probe;
    std::string error;
    if (!mempart::analyze::load_compile_commands(compdb, probe, error)) {
      std::cerr << "mempart_analyze: " << error << "\n";
      return 2;
    }
  }

  // Pass 1 — structural frontend over every requested file. This also
  // collects what only comments and macros can provide (suppression
  // pragmas, annotation names), so it runs in clang mode too.
  FactsDb db;
  std::size_t scanned = 0;
  for (const std::string& root : paths) {
    std::error_code ec;
    const std::filesystem::path p(root);
    std::vector<std::filesystem::path> files;
    if (std::filesystem::is_directory(p, ec)) {
      for (auto it = std::filesystem::recursive_directory_iterator(p, ec);
           !ec && it != std::filesystem::recursive_directory_iterator();
           it.increment(ec)) {
        if (it->is_regular_file(ec) && analyzable(it->path()) &&
            !hidden_or_build(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (std::filesystem::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::cerr << "mempart_analyze: no such file or directory: " << root
                << "\n";
      return 2;
    }
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
      std::ifstream in(file, std::ios::binary);
      std::ostringstream ss;
      ss << in.rdbuf();
      db.merge(mempart::analyze::extract_syntax(file.generic_string(),
                                                ss.str()));
      ++scanned;
    }
  }
  if (verbose) {
    std::cerr << "mempart_analyze: structural frontend scanned " << scanned
              << " files, " << db.functions.size() << " functions\n";
  }

  // Pass 2 — clang frontend, replacing structural facts per TU.
  bool use_clang = frontend == "clang";
  if (frontend == "auto" && !compdb.empty()) {
    use_clang = clang_available(clang_options.clang_binary);
    if (!use_clang && verbose) {
      std::cerr << "mempart_analyze: " << clang_options.clang_binary
                << " not found, staying on the structural frontend\n";
    }
  }
  if (use_clang) {
    clang_options.compdb_path = compdb;
    clang_options.verbose = verbose;
    if (clang_options.project_root.empty()) {
      std::error_code ec;
      clang_options.project_root =
          std::filesystem::current_path(ec).generic_string();
    }
    std::string error;
    if (!mempart::analyze::run_clang_frontend(clang_options, db, std::cerr,
                                              error)) {
      std::cerr << "mempart_analyze: " << error << "\n";
      return 2;
    }
  }

  db.finalize();
  const AnalysisResult result = mempart::analyze::run_rules(db, rules);

  if (!report_path.empty()) {
    std::ofstream out(report_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "mempart_analyze: cannot write report to " << report_path
                << "\n";
      return 2;
    }
    out << mempart::analyze::report_json(result);
  }
  if (!graph_path.empty()) {
    std::ofstream out(graph_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "mempart_analyze: cannot write graph to " << graph_path
                << "\n";
      return 2;
    }
    out << mempart::analyze::lock_graph_dot(result);
  }

  mempart::analyze::print_findings(result, std::cout);
  if (result.findings.empty()) {
    std::cout << "mempart_analyze: clean (" << db.functions.size()
              << " functions, " << result.lock_edges.size()
              << " lock edges)\n";
    return 0;
  }
  std::cout << "mempart_analyze: " << result.findings.size()
            << " finding(s)\n";
  return 1;
}
