// The four whole-program rules mempart_analyze runs over the facts IR.
#pragma once

#include <string>
#include <vector>

#include "ir.h"

namespace mempart::analyze {

struct Finding {
  std::string file;
  int line = 0;
  int col = 0;
  std::string rule;
  std::string message;
  /// Witness: the call/acquisition chain that makes the finding concrete
  /// ("Partitioner::solve_into -> solve_impl -> ... file:line:col").
  std::vector<std::string> path;
};

/// One edge of the global lock-order graph: `from` was held when `to` was
/// acquired, at `loc`, inside `function` (possibly via `via` call hops).
struct LockEdge {
  std::string from;
  std::string to;
  std::string function;
  Loc loc;
  std::vector<std::string> via;
  bool in_cycle = false;
};

struct AnalysisResult {
  std::vector<Finding> findings;
  std::vector<LockEdge> lock_edges;  ///< full graph, for --graph export
};

/// Rule names in the order --list-rules prints them.
[[nodiscard]] const std::vector<std::string>& rule_names();

/// Runs `rules` (empty = all) over the finalized facts. Findings come back
/// sorted by file/line and already filtered through the per-line
/// `mempart-analyze: allow(<rule>)` suppressions recorded in the db.
[[nodiscard]] AnalysisResult run_rules(const FactsDb& db,
                                       const std::vector<std::string>& rules);

}  // namespace mempart::analyze
