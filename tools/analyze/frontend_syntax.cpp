#include "frontend_syntax.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <string_view>
#include <vector>

namespace mempart::analyze {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer (comments/strings/preprocessor consumed; pragmas collected)
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kPunct };

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;
  int col = 0;
};

struct PragmaAllow {
  int target_line = 0;
  std::set<std::string> rules;
};

struct TokenStream {
  std::vector<Token> tokens;
  std::vector<PragmaAllow> pragmas;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Recognizes `mempart-analyze: allow(rule[, rule]) reason` in a comment
/// body. Reasons are mandatory here exactly as for mempart_lint; a
/// reason-less analyzer pragma simply does not suppress (the lint tool owns
/// pragma hygiene enforcement, one tool per job).
void scan_comment(std::string_view body, int line, bool after_code,
                  std::vector<PragmaAllow>& out) {
  const std::string_view marker = "mempart-analyze:";
  const size_t at = body.find(marker);
  if (at == std::string_view::npos) return;
  size_t pos = at + marker.size();
  while (pos < body.size() && body[pos] == ' ') ++pos;
  const std::string_view allow = "allow(";
  if (body.compare(pos, allow.size(), allow) != 0) return;
  pos += allow.size();
  const size_t close = body.find(')', pos);
  if (close == std::string_view::npos) return;
  PragmaAllow pragma;
  pragma.target_line = after_code ? line : line + 1;
  std::string rule;
  for (size_t i = pos; i <= close; ++i) {
    const char c = i < close ? body[i] : ',';
    if (c == ',') {
      while (!rule.empty() && rule.front() == ' ') rule.erase(rule.begin());
      while (!rule.empty() && rule.back() == ' ') rule.pop_back();
      if (!rule.empty()) pragma.rules.insert(rule);
      rule.clear();
    } else {
      rule += c;
    }
  }
  std::string_view reason = body.substr(close + 1);
  while (!reason.empty() && (reason.front() == ' ' || reason.front() == '\t')) {
    reason.remove_prefix(1);
  }
  if (!reason.empty() && !pragma.rules.empty()) out.push_back(pragma);
}

TokenStream tokenize(const std::string& text) {
  TokenStream stream;
  size_t i = 0;
  int line = 1;
  int col = 1;
  bool line_has_token = false;
  const size_t n = text.size();
  const auto advance = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k) {
      if (text[i] == '\n') {
        ++line;
        col = 1;
        line_has_token = false;
      } else {
        ++col;
      }
      ++i;
    }
  };
  while (i < n) {
    const char c = text[i];
    if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\f' ||
        c == '\v') {
      advance(1);
      continue;
    }
    // Preprocessor directives: consumed whole (with continuations). The
    // analyzer reasons about definitions, not inclusion graphs.
    if (c == '#' && !line_has_token) {
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          advance(2);
          continue;
        }
        if (text[i] == '\n') break;
        advance(1);
      }
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const size_t start = i + 2;
      size_t end = start;
      while (end < n && text[end] != '\n') ++end;
      scan_comment(std::string_view(text).substr(start, end - start), line,
                   line_has_token, stream.pragmas);
      advance(end - i);
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int start_line = line;
      const bool after_code = line_has_token;
      const size_t start = i + 2;
      size_t end = start;
      while (end + 1 < n && !(text[end] == '*' && text[end + 1] == '/')) ++end;
      scan_comment(std::string_view(text).substr(start, end - start),
                   start_line, after_code, stream.pragmas);
      advance(std::min(n, end + 2) - i);
      continue;
    }
    if (c == '"') {
      bool raw = false;
      if (!stream.tokens.empty() &&
          stream.tokens.back().kind == TokKind::kIdent &&
          stream.tokens.back().line == line) {
        const std::string& prev = stream.tokens.back().text;
        if (!prev.empty() && prev.back() == 'R') raw = true;
      }
      if (raw) {
        size_t d_end = i + 1;
        while (d_end < n && text[d_end] != '(') ++d_end;
        const std::string delim = ")" + text.substr(i + 1, d_end - i - 1) + "\"";
        const size_t close = text.find(delim, d_end);
        const size_t stop = close == std::string::npos ? n : close + delim.size();
        advance(stop - i);
        line_has_token = true;
        continue;
      }
      size_t end = i + 1;
      while (end < n && text[end] != '"') {
        if (text[end] == '\\' && end + 1 < n) ++end;
        ++end;
      }
      advance(std::min(n, end + 1) - i);
      line_has_token = true;
      continue;
    }
    if (c == '\'') {
      size_t end = i + 1;
      while (end < n && text[end] != '\'') {
        if (text[end] == '\\' && end + 1 < n) ++end;
        ++end;
      }
      advance(std::min(n, end + 1) - i);
      line_has_token = true;
      continue;
    }
    if (ident_start(c)) {
      size_t end = i;
      while (end < n && ident_char(text[end])) ++end;
      stream.tokens.push_back(
          {TokKind::kIdent, text.substr(i, end - i), line, col});
      advance(end - i);
      line_has_token = true;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      size_t end = i;
      while (end < n && (ident_char(text[end]) || text[end] == '\'' ||
                         ((text[end] == '+' || text[end] == '-') && end > i &&
                          (text[end - 1] == 'e' || text[end - 1] == 'E' ||
                           text[end - 1] == 'p' || text[end - 1] == 'P')))) {
        ++end;
      }
      if (end < n && text[end] == '.') {
        ++end;
        while (end < n && (ident_char(text[end]) ||
                           ((text[end] == '+' || text[end] == '-') &&
                            (text[end - 1] == 'e' || text[end - 1] == 'E')))) {
          ++end;
        }
      }
      stream.tokens.push_back(
          {TokKind::kNumber, text.substr(i, end - i), line, col});
      advance(end - i);
      line_has_token = true;
      continue;
    }
    static const char* kMulti[] = {"<<=", ">>=", "->*", "...", "::", "->",
                                   "<<",  ">>",  "<=",  ">=",  "==", "!=",
                                   "&&",  "||",  "+=",  "-=",  "*=", "/=",
                                   "%=",  "&=",  "|=",  "^=",  "++", "--"};
    std::string punct(1, c);
    for (const char* m : kMulti) {
      const size_t len = std::char_traits<char>::length(m);
      if (text.compare(i, len, m) == 0) {
        punct = m;
        break;
      }
    }
    stream.tokens.push_back({TokKind::kPunct, punct, line, col});
    advance(punct.size());
    line_has_token = true;
  }
  return stream;
}

// ---------------------------------------------------------------------------
// Structural extraction
// ---------------------------------------------------------------------------

const std::set<std::string, std::less<>> kControlKeywords = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "catch", "new", "delete", "throw", "case", "default", "do", "else",
    "static_assert", "decltype", "alignas", "co_return", "co_await",
    "co_yield", "goto", "typeid"};

const std::set<std::string, std::less<>> kScopedGuards = {
    "MutexLock", "UniqueLock", "lock_guard", "scoped_lock", "unique_lock",
    "shared_lock"};

const std::set<std::string, std::less<>> kAtomicOps = {
    "load",
    "store",
    "exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "compare_exchange_weak",
    "compare_exchange_strong",
    "test_and_set"};

const std::set<std::string, std::less<>> kGrowCalls = {
    "push_back", "emplace_back", "emplace", "insert", "append",
    "resize",    "reserve",      "assign",  "push_front", "emplace_front"};

struct Scope {
  enum class Kind { kNamespace, kRecord, kFunction, kBlock };
  Kind kind = Kind::kBlock;
  std::string name;                 ///< namespace or record name
  int fn_index = -1;                ///< functions[] index for kFunction
  std::vector<std::string> locks;   ///< locks acquired in this scope
};

struct CondRegion {
  size_t open = 0;   ///< token index of '('
  size_t close = 0;  ///< token index of matching ')'
  bool has_cas = false;
  bool pure_control = false;  ///< guarded statement is bare return/break/continue
};

class Extractor {
 public:
  Extractor(std::string path, const TokenStream& stream)
      : path_(std::move(path)), toks_(stream.tokens) {
    db_.allows = {};
    for (const PragmaAllow& pragma : stream.pragmas) {
      db_.allows[path_][pragma.target_line].insert(pragma.rules.begin(),
                                                   pragma.rules.end());
    }
    const size_t dot = path_.rfind('.');
    const std::string ext = dot == std::string::npos ? "" : path_.substr(dot);
    in_cpp_ = ext == ".cpp" || ext == ".cc" || ext == ".cxx";
    match_parens();
  }

  FactsDb run() {
    const size_t n = toks_.size();
    size_t stmt_start = 0;
    for (size_t i = 0; i < n; ++i) {
      const Token& t = toks_[i];
      maintain_cond_regions(i);
      if (t.kind == TokKind::kIdent) {
        if (t.text == "MEMPART_NOALLOC" || t.text == "MEMPART_ALLOC_BOUNDARY") {
          record_annotation(i, t.text == "MEMPART_NOALLOC");
          continue;
        }
        if (in_function()) scan_body_token(i);
        continue;
      }
      if (t.text == ";") {
        stmt_start = i + 1;
        continue;
      }
      if (t.text == "{") {
        open_scope(stmt_start, i);
        stmt_start = i + 1;
        continue;
      }
      if (t.text == "}") {
        close_scope();
        stmt_start = i + 1;
        continue;
      }
    }
    return std::move(db_);
  }

 private:
  // -- paren/brace matching and condition headers ---------------------------

  void match_parens() {
    std::vector<size_t> paren_stack;
    std::vector<size_t> brace_stack;
    paren_match_.assign(toks_.size(), 0);
    brace_match_.assign(toks_.size(), 0);
    for (size_t i = 0; i < toks_.size(); ++i) {
      const std::string& s = toks_[i].text;
      if (s == "(") paren_stack.push_back(i);
      if (s == ")" && !paren_stack.empty()) {
        paren_match_[paren_stack.back()] = i;
        paren_match_[i] = paren_stack.back();
        paren_stack.pop_back();
      }
      if (s == "{") brace_stack.push_back(i);
      if (s == "}" && !brace_stack.empty()) {
        brace_match_[brace_stack.back()] = i;
        brace_match_[i] = brace_stack.back();
        brace_stack.pop_back();
      }
    }
    // Precompute condition regions: if/while/for/switch followed by '('.
    for (size_t i = 0; i + 1 < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokKind::kIdent) continue;
      if (t.text != "if" && t.text != "while" && t.text != "for" &&
          t.text != "switch") {
        continue;
      }
      size_t open = i + 1;
      if (toks_[open].text == "constexpr" && open + 1 < toks_.size()) ++open;
      if (toks_[open].text != "(") continue;
      CondRegion region;
      region.open = open;
      region.close = paren_match_[open];
      if (region.close <= region.open) continue;
      for (size_t k = region.open; k < region.close; ++k) {
        if (toks_[k].kind == TokKind::kIdent &&
            toks_[k].text.rfind("compare_exchange", 0) == 0) {
          region.has_cas = true;
        }
      }
      region.pure_control = guarded_is_pure_control(region.close + 1);
      regions_.push_back(region);
    }
    std::sort(regions_.begin(), regions_.end(),
              [](const CondRegion& a, const CondRegion& b) {
                return a.open < b.open;
              });
  }

  /// True when the statement after a condition's ')' is a bare
  /// `return;` / `break;` / `continue;` (optionally one `{ ... }` around
  /// exactly such statements) — the shape of a benign pruning bound.
  bool guarded_is_pure_control(size_t at) {
    const auto pure_stmt = [&](size_t s, size_t limit) -> size_t {
      if (s >= limit || toks_[s].kind != TokKind::kIdent) return 0;
      const std::string& kw = toks_[s].text;
      if (kw != "return" && kw != "break" && kw != "continue") return 0;
      size_t k = s + 1;
      while (k < limit && toks_[k].text != ";") {
        // Simple value returns stay pure; anything with a call or
        // assignment does not.
        if (toks_[k].text == "(" || toks_[k].text == "=") return 0;
        ++k;
      }
      return k < limit ? k + 1 : 0;
    };
    if (at >= toks_.size()) return false;
    if (toks_[at].text == "{") {
      const size_t close = brace_match_[at];
      if (close <= at) return false;
      size_t s = at + 1;
      if (s == close) return false;  // empty guarded block: a spin wait
      while (s < close) {
        const size_t next = pure_stmt(s, close);
        if (next == 0) return false;
        s = next;
      }
      return true;
    }
    return pure_stmt(at, toks_.size()) != 0;
  }

  void maintain_cond_regions(size_t i) {
    while (next_region_ < regions_.size() && regions_[next_region_].open <= i) {
      active_regions_.push_back(regions_[next_region_]);
      ++next_region_;
    }
    std::erase_if(active_regions_,
                  [&](const CondRegion& r) { return r.close <= i; });
  }

  [[nodiscard]] const CondRegion* innermost_region(size_t i) const {
    const CondRegion* found = nullptr;
    for (const CondRegion& r : active_regions_) {
      if (r.open < i && i < r.close) found = &r;
    }
    return found;
  }

  // -- scope handling -------------------------------------------------------

  [[nodiscard]] bool in_function() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kFunction) return true;
      if (it->kind == Scope::Kind::kRecord ||
          it->kind == Scope::Kind::kNamespace) {
        return false;
      }
    }
    return false;
  }

  [[nodiscard]] int current_fn() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kFunction) return it->fn_index;
    }
    return -1;
  }

  [[nodiscard]] std::string record_chain() const {
    std::string chain;
    for (const Scope& s : scopes_) {
      if (s.kind != Scope::Kind::kRecord || s.name.empty()) continue;
      if (!chain.empty()) chain += "::";
      chain += s.name;
    }
    return chain;
  }

  [[nodiscard]] std::vector<std::string> held_locks() const {
    std::vector<std::string> held;
    for (const Scope& s : scopes_) {
      held.insert(held.end(), s.locks.begin(), s.locks.end());
    }
    return held;
  }

  void open_scope(size_t stmt_start, size_t brace) {
    Scope scope;
    scope.kind = Scope::Kind::kBlock;
    // Inside a function, every brace is a plain block (lambdas, loops,
    // local classes included — local classes are rare enough to fold in).
    if (!in_function()) {
      classify_decl_scope(stmt_start, brace, scope);
    }
    scopes_.push_back(std::move(scope));
  }

  void classify_decl_scope(size_t stmt_start, size_t brace, Scope& scope) {
    // Find the last record/namespace keyword in the pending declaration.
    size_t record_kw = brace;
    size_t namespace_kw = brace;
    bool has_eq = false;
    int angle = 0;
    for (size_t k = stmt_start; k < brace; ++k) {
      const Token& t = toks_[k];
      if (t.kind == TokKind::kIdent) {
        if (t.text == "class" || t.text == "struct" || t.text == "union" ||
            t.text == "enum") {
          record_kw = k;
        } else if (t.text == "namespace") {
          namespace_kw = k;
        }
        continue;
      }
      if (t.text == "<") ++angle;
      if (t.text == ">" && angle > 0) --angle;
      if (t.text == "=" && angle == 0) has_eq = true;
    }
    if (namespace_kw < brace) {
      scope.kind = Scope::Kind::kNamespace;
      if (namespace_kw + 1 < brace &&
          toks_[namespace_kw + 1].kind == TokKind::kIdent) {
        scope.name = toks_[namespace_kw + 1].text;
      }
      return;
    }
    if (record_kw < brace) {
      // `struct X {` / `class Y : base {` — but not `struct X f() {`:
      // a declaration ending in ')' (or a function specifier) is a
      // function returning a record type.
      const Token& last = toks_[brace - 1];
      const bool function_tail =
          last.text == ")" || last.text == "const" || last.text == "noexcept" ||
          last.text == "override" || last.text == "final";
      if (!function_tail) {
        scope.kind = Scope::Kind::kRecord;
        size_t name_at = record_kw + 1;
        if (name_at < brace && toks_[name_at].text == "class") ++name_at;  // enum class
        // Skip attribute/alignas/template junk conservatively.
        if (name_at < brace && toks_[name_at].kind == TokKind::kIdent) {
          scope.name = toks_[name_at].text;
        }
        return;
      }
    }
    if (has_eq) return;  // initializer braces / lambda assignment
    try_open_function(stmt_start, brace, scope);
  }

  void try_open_function(size_t stmt_start, size_t brace, Scope& scope) {
    // Locate the function name: first `ident (` pair at top level of the
    // declaration, skipping template-argument parens.
    int angle = 0;
    size_t name_at = brace;
    for (size_t k = stmt_start; k + 1 < brace; ++k) {
      const Token& t = toks_[k];
      if (t.text == "<") {
        ++angle;
        continue;
      }
      if (t.text == ">") {
        if (angle > 0) --angle;
        continue;
      }
      if (angle != 0) continue;
      if (t.kind != TokKind::kIdent) continue;
      if (kControlKeywords.count(t.text) != 0) continue;
      if (toks_[k + 1].text != "(") continue;
      name_at = k;
      break;
    }
    if (name_at >= brace) return;
    // `operator` functions: token before '(' may be punctuation; covered by
    // looking back from the '(' when no ident name matched above.
    Function fn;
    fn.name = toks_[name_at].text;
    fn.loc = {path_, toks_[name_at].line, toks_[name_at].col};
    fn.defined_in_cpp = in_cpp_;
    // Qualifier: `A::B::name(` — collect the ident::chain before the name.
    size_t q = name_at;
    std::vector<std::string> quals;
    while (q >= 2 && toks_[q - 1].text == "::" &&
           toks_[q - 2].kind == TokKind::kIdent) {
      quals.insert(quals.begin(), toks_[q - 2].text);
      q -= 2;
    }
    std::string cls;
    for (const std::string& part : quals) {
      if (!part.empty() && std::isupper(static_cast<unsigned char>(part[0]))) {
        if (!cls.empty()) cls += "::";
        cls += part;
      }
    }
    if (cls.empty()) cls = record_chain();
    fn.cls = cls;
    // Constructors read as cls::cls — keep them; rules exempt by name.
    // Annotations spelled directly on this definition.
    for (size_t k = stmt_start; k < brace; ++k) {
      if (toks_[k].text == "MEMPART_NOALLOC") fn.noalloc = true;
      if (toks_[k].text == "MEMPART_ALLOC_BOUNDARY") fn.alloc_boundary = true;
    }
    scope.kind = Scope::Kind::kFunction;
    scope.fn_index = static_cast<int>(db_.functions.size());
    guard_vars_.clear();
    db_.functions.push_back(std::move(fn));
  }

  void close_scope() {
    if (scopes_.empty()) return;
    scopes_.pop_back();
  }

  // -- annotation declarations ----------------------------------------------

  void record_annotation(size_t i, bool noalloc) {
    // Find the annotated function's name: the next `ident (` within the
    // declaration (bounded look-ahead, stopping at ; or {).
    int angle = 0;
    for (size_t k = i + 1; k + 1 < toks_.size() && k < i + 96; ++k) {
      const std::string& s = toks_[k].text;
      if (s == ";" || s == "{") break;
      if (s == "<") ++angle;
      if (s == ">" && angle > 0) --angle;
      if (angle != 0) continue;
      if (toks_[k].kind != TokKind::kIdent) continue;
      if (kControlKeywords.count(s) != 0) continue;
      if (toks_[k + 1].text != "(") continue;
      std::string name = s;
      size_t q = k;
      std::vector<std::string> quals;
      while (q >= 2 && toks_[q - 1].text == "::" &&
             toks_[q - 2].kind == TokKind::kIdent) {
        quals.insert(quals.begin(), toks_[q - 2].text);
        q -= 2;
      }
      std::string cls;
      for (const std::string& part : quals) {
        if (!part.empty() &&
            std::isupper(static_cast<unsigned char>(part[0]))) {
          if (!cls.empty()) cls += "::";
          cls += part;
        }
      }
      if (cls.empty()) cls = record_chain();
      const std::string qualified = cls.empty() ? name : cls + "::" + name;
      if (noalloc) {
        db_.noalloc_names.insert(qualified);
      } else {
        db_.boundary_names.insert(qualified);
      }
      return;
    }
  }

  // -- body fact extraction -------------------------------------------------

  /// Receiver chain text for a member call/access ending just before `dot`:
  /// walks back over `ident`, `.`, `->`, `::`, `]`…`[` pairs.
  [[nodiscard]] std::string receiver_text(size_t dot) const {
    std::string out;
    size_t k = dot;
    int guard = 0;
    while (k > 0 && guard++ < 16) {
      const Token& t = toks_[k - 1];
      if (t.text == "]") {
        // skip the subscript
        size_t depth = 1;
        size_t j = k - 1;
        while (j > 0 && depth > 0) {
          --j;
          if (toks_[j].text == "]") ++depth;
          if (toks_[j].text == "[") --depth;
        }
        k = j;
        continue;
      }
      if (t.kind == TokKind::kIdent || t.text == "." || t.text == "->" ||
          t.text == "::") {
        out.insert(0, t.text);
        --k;
        continue;
      }
      break;
    }
    return out;
  }

  void scan_body_token(size_t i) {
    const Token& t = toks_[i];
    const int fn_index = current_fn();
    if (fn_index < 0) return;
    Function& fn = db_.functions[static_cast<size_t>(fn_index)];
    const size_t n = toks_.size();

    // obs span: any Span declaration/construction inside the body.
    if (t.text == "Span") {
      fn.has_span = true;
      return;
    }

    // Scoped lock guard declaration: Guard [<...>] name ( args ) ;
    if (kScopedGuards.count(t.text) != 0) {
      size_t k = i + 1;
      if (k < n && toks_[k].text == "<") {
        int depth = 1;
        ++k;
        while (k < n && depth > 0) {
          if (toks_[k].text == "<") ++depth;
          if (toks_[k].text == ">") --depth;
          ++k;
        }
      }
      if (k + 1 < n && toks_[k].kind == TokKind::kIdent &&
          toks_[k + 1].text == "(") {
        const size_t open = k + 1;
        const size_t close = paren_match_[open];
        if (close > open) {
          const size_t before = fn.acquires.size();
          record_acquires(fn, open, close, toks_[k].line, toks_[k].col);
          if (fn.acquires.size() > before) {
            // Remember which underlying lock this guard variable manages,
            // so a later `guard.lock()` re-acquires that lock instead of
            // minting a phantom lock named after the guard.
            guard_vars_[toks_[k].text] = fn.acquires.back().lock;
          }
        }
      }
      return;
    }

    // Manual lock()/unlock() on a mutex-like object.
    if ((t.text == "lock" || t.text == "unlock") && i >= 1 &&
        (toks_[i - 1].text == "." || toks_[i - 1].text == "->") &&
        i + 1 < n && toks_[i + 1].text == "(") {
      const std::string object = receiver_text(i - 1);
      if (object.empty()) return;
      const auto guard_it = guard_vars_.find(object);
      const std::string id = guard_it != guard_vars_.end()
                                 ? guard_it->second
                                 : lock_identity(object);
      if (t.text == "lock") {
        AcquireEvent event;
        event.lock = id;
        event.loc = {path_, t.line, t.col};
        event.held = held_locks();
        fn.acquires.push_back(event);
        if (!scopes_.empty()) scopes_.back().locks.push_back(id);
      } else {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
          auto found = std::find(it->locks.begin(), it->locks.end(), id);
          if (found != it->locks.end()) {
            it->locks.erase(found);
            break;
          }
        }
      }
      return;
    }

    // Atomic operations naming an explicit memory order.
    if (kAtomicOps.count(t.text) != 0 && i >= 1 &&
        (toks_[i - 1].text == "." || toks_[i - 1].text == "->") &&
        i + 1 < n && toks_[i + 1].text == "(") {
      const size_t open = i + 1;
      const size_t close = paren_match_[open];
      bool relaxed = false;
      for (size_t k = open; k < close; ++k) {
        if (toks_[k].text == "memory_order_relaxed") relaxed = true;
      }
      AtomicEvent event;
      event.relaxed = relaxed;
      event.object = receiver_text(i - 1);
      event.loc = {path_, t.line, t.col};
      if (t.text == "load") {
        event.op = AtomicOp::kLoad;
      } else if (t.text == "store") {
        event.op = AtomicOp::kStore;
      } else if (t.text.rfind("compare_exchange", 0) == 0) {
        event.op = AtomicOp::kCas;
      } else {
        event.op = AtomicOp::kRmw;
      }
      if (const CondRegion* region = innermost_region(i)) {
        event.in_condition = true;
        event.cond_has_cas = region->has_cas;
        event.guard_pure_control = region->pure_control;
      }
      fn.atomics.push_back(std::move(event));
      record_call(fn, i, /*member=*/true);
      return;
    }

    // Allocation constructs.
    if (t.text == "new") {
      if (i >= 1 && toks_[i - 1].text == "operator") return;
      AllocEvent event;
      event.what = "new";
      event.loc = {path_, t.line, t.col};
      fn.allocs.push_back(std::move(event));
      return;
    }
    if (t.text == "make_unique" || t.text == "make_shared") {
      AllocEvent event;
      event.what = t.text;
      event.loc = {path_, t.line, t.col};
      fn.allocs.push_back(std::move(event));
      return;
    }

    // Calls (also records growing-container member calls as alloc events).
    if (i + 1 < n && toks_[i + 1].text == "(" &&
        kControlKeywords.count(t.text) == 0) {
      const bool member =
          i >= 1 && (toks_[i - 1].text == "." || toks_[i - 1].text == "->");
      if (!member && i >= 1) {
        const Token& prev = toks_[i - 1];
        // `Type name(...)` is a declaration, not a call; so is `fn` after
        // another identifier or a closing angle bracket of a type.
        if (prev.kind == TokKind::kIdent || prev.text == ">" ||
            prev.text == "&" || prev.text == "*") {
          const bool qualified = i >= 2 && toks_[i - 1].text == "::";
          if (!qualified) return;
        }
      }
      if (member && kGrowCalls.count(t.text) != 0) {
        AllocEvent event;
        event.what = t.text;
        event.grow_call = true;
        event.receiver = receiver_text(i - 1);
        event.loc = {path_, t.line, t.col};
        fn.allocs.push_back(std::move(event));
      }
      record_call(fn, i, member);
      return;
    }
  }

  void record_call(Function& fn, size_t name_at, bool member) {
    CallEvent event;
    event.name = toks_[name_at].text;
    event.member = member;
    event.loc = {path_, toks_[name_at].line, toks_[name_at].col};
    event.held = held_locks();
    if (!member) {
      size_t q = name_at;
      std::vector<std::string> quals;
      while (q >= 2 && toks_[q - 1].text == "::" &&
             toks_[q - 2].kind == TokKind::kIdent) {
        quals.insert(quals.begin(), toks_[q - 2].text);
        q -= 2;
      }
      for (size_t k = 0; k < quals.size(); ++k) {
        if (k != 0) event.qualifier += "::";
        event.qualifier += quals[k];
      }
    } else {
      event.qualifier = receiver_text(name_at - 1);
    }
    fn.calls.push_back(std::move(event));
  }

  void record_acquires(Function& fn, size_t open, size_t close, int line,
                       int col) {
    // scoped_lock may take several mutexes; split top-level commas.
    std::vector<std::string> args;
    std::string current;
    int depth = 0;
    for (size_t k = open + 1; k < close; ++k) {
      const Token& t = toks_[k];
      if (t.text == "(" || t.text == "[" || t.text == "<") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == ">") --depth;
      if (t.text == "," && depth == 0) {
        args.push_back(current);
        current.clear();
        continue;
      }
      if (t.text == "this" || t.text == "->" || t.text == "&" ||
          t.text == "*") {
        continue;  // normalize this->m_, &m, *m to m
      }
      current += t.text;
    }
    if (!current.empty()) args.push_back(current);
    for (const std::string& arg : args) {
      if (arg.empty()) continue;
      AcquireEvent event;
      event.lock = lock_identity(arg);
      event.loc = {path_, line, col};
      event.held = held_locks();
      fn.acquires.push_back(event);
      if (!scopes_.empty()) scopes_.back().locks.push_back(event.lock);
    }
  }

  /// Lock identity: the normalized expression qualified by the enclosing
  /// class (methods of one class name the same member the same way across
  /// TUs) or by the file for free functions (file-local globals).
  [[nodiscard]] std::string lock_identity(const std::string& expr) const {
    const int fn_index = current_fn();
    std::string owner;
    if (fn_index >= 0) {
      owner = db_.functions[static_cast<size_t>(fn_index)].cls;
    }
    if (owner.empty()) owner = path_;
    return owner + "::" + expr;
  }

  std::string path_;
  bool in_cpp_ = false;
  const std::vector<Token>& toks_;
  std::vector<size_t> paren_match_;
  std::vector<size_t> brace_match_;
  std::vector<CondRegion> regions_;
  std::vector<CondRegion> active_regions_;
  size_t next_region_ = 0;
  std::vector<Scope> scopes_;
  /// guard variable name -> underlying lock identity, per function
  std::map<std::string, std::string> guard_vars_;
  FactsDb db_;
};

}  // namespace

FactsDb extract_syntax(const std::string& path, const std::string& text) {
  const TokenStream stream = tokenize(text);
  Extractor extractor(path, stream);
  return extractor.run();
}

}  // namespace mempart::analyze
