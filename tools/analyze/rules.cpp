#include "rules.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <utility>

namespace mempart::analyze {
namespace {

// ---------------------------------------------------------------------------
// Call resolution
// ---------------------------------------------------------------------------

/// Resolves calls by name against the whole-program function list. The
/// syntax frontend records receiver *text*, not types, so member calls
/// resolve in falling precision: same-class method (implicit this), then a
/// method name defined by exactly one class anywhere in the program. An
/// ambiguous or unknown callee resolves to nothing — every rule treats
/// "unresolved" conservatively for its own direction (noalloc stops the
/// walk, span-coverage gets no credit, lock-order adds no edge).
class Resolver {
 public:
  explicit Resolver(const FactsDb& db) : db_(db) {
    for (std::size_t i = 0; i < db.functions.size(); ++i) {
      const Function& fn = db.functions[i];
      by_qualified_[fn.qualified()].push_back(i);
      by_name_[fn.name].push_back(i);
      if (!fn.cls.empty()) classes_of_[fn.name].insert(fn.cls);
    }
  }

  [[nodiscard]] std::vector<std::size_t> resolve(const CallEvent& call,
                                                 const Function& caller) const {
    if (!caller.cls.empty()) {
      const auto it = by_qualified_.find(caller.cls + "::" + call.name);
      if (it != by_qualified_.end()) return it->second;
    }
    if (!call.qualifier.empty()) {
      const auto it = by_qualified_.find(call.qualifier + "::" + call.name);
      if (it != by_qualified_.end()) return it->second;
    }
    if (call.member) {
      const auto cls_it = classes_of_.find(call.name);
      if (cls_it != classes_of_.end() && cls_it->second.size() == 1) {
        const auto it =
            by_qualified_.find(*cls_it->second.begin() + "::" + call.name);
        if (it != by_qualified_.end()) return it->second;
      }
      return {};
    }
    const auto it = by_qualified_.find(call.name);  // free functions
    if (it != by_qualified_.end()) return it->second;
    return {};
  }

 private:
  const FactsDb& db_;
  std::map<std::string, std::vector<std::size_t>> by_qualified_;
  std::map<std::string, std::vector<std::size_t>> by_name_;
  std::map<std::string, std::set<std::string>> classes_of_;
};

std::string describe(const Function& fn) {
  return fn.qualified() + " (" + fn.loc.str() + ")";
}

bool suppressed(const FactsDb& db, const Finding& finding) {
  return db.allowed(finding.file, finding.line, finding.rule);
}

// ---------------------------------------------------------------------------
// Rule: lock-order
// ---------------------------------------------------------------------------

/// Per-lock transitive witness: how a call into some function ends up
/// acquiring `lock`.
struct AcquireWitness {
  Loc loc;                        ///< the eventual acquisition site
  std::vector<std::string> hops;  ///< functions walked to get there
};

void rule_lock_order(const FactsDb& db, const Resolver& resolver,
                     AnalysisResult& out) {
  const std::size_t n = db.functions.size();

  // Acquire closure: closure[f][lock] = one witness chain by which calling f
  // may acquire lock. Fixpoint relaxation; the function count bounds the
  // longest acyclic chain, so n passes suffice.
  std::vector<std::map<std::string, AcquireWitness>> closure(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const AcquireEvent& acq : db.functions[i].acquires) {
      closure[i].emplace(acq.lock, AcquireWitness{acq.loc, {}});
    }
  }
  bool changed = true;
  for (std::size_t pass = 0; changed && pass < n + 1; ++pass) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const Function& fn = db.functions[i];
      for (const CallEvent& call : fn.calls) {
        for (const std::size_t callee : resolver.resolve(call, fn)) {
          if (callee == i) continue;
          for (const auto& [lock, wit] : closure[callee]) {
            if (closure[i].count(lock) != 0) continue;
            AcquireWitness lifted;
            lifted.loc = wit.loc;
            lifted.hops.push_back(describe(db.functions[callee]));
            lifted.hops.insert(lifted.hops.end(), wit.hops.begin(),
                               wit.hops.end());
            closure[i].emplace(lock, std::move(lifted));
            changed = true;
          }
        }
      }
    }
  }

  // Edge harvest: held -> acquired, directly and through calls. Self-edges
  // are skipped by design: same-identity acquisitions in this codebase are
  // striped shards (distinct instances of one lock family).
  std::map<std::pair<std::string, std::string>, std::size_t> edge_index;
  const auto add_edge = [&](const std::string& from, const std::string& to,
                            const Function& fn, const Loc& loc,
                            std::vector<std::string> via) {
    if (from == to) return;
    const auto key = std::make_pair(from, to);
    if (edge_index.count(key) != 0) return;
    edge_index.emplace(key, out.lock_edges.size());
    LockEdge edge;
    edge.from = from;
    edge.to = to;
    edge.function = fn.qualified();
    edge.loc = loc;
    edge.via = std::move(via);
    out.lock_edges.push_back(std::move(edge));
  };
  for (std::size_t i = 0; i < n; ++i) {
    const Function& fn = db.functions[i];
    for (const AcquireEvent& acq : fn.acquires) {
      for (const std::string& held : acq.held) {
        add_edge(held, acq.lock, fn, acq.loc, {});
      }
    }
    for (const CallEvent& call : fn.calls) {
      if (call.held.empty()) continue;
      for (const std::size_t callee : resolver.resolve(call, fn)) {
        if (callee == i) continue;
        for (const auto& [lock, wit] : closure[callee]) {
          for (const std::string& held : call.held) {
            std::vector<std::string> via;
            via.push_back(describe(db.functions[callee]));
            via.insert(via.end(), wit.hops.begin(), wit.hops.end());
            add_edge(held, lock, fn, call.loc, std::move(via));
          }
        }
      }
    }
  }

  // Cycle detection over the lock graph (iterative DFS, three colors).
  std::map<std::string, std::vector<std::size_t>> adjacency;
  std::set<std::string> nodes;
  for (std::size_t e = 0; e < out.lock_edges.size(); ++e) {
    adjacency[out.lock_edges[e].from].push_back(e);
    nodes.insert(out.lock_edges[e].from);
    nodes.insert(out.lock_edges[e].to);
  }
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::size_t> edge_stack;
  std::set<std::vector<std::string>> reported;

  const auto report_cycle = [&](const std::string& back_to) {
    // edge_stack currently ends with the edge closing the cycle at back_to.
    std::vector<std::size_t> cycle_edges;
    for (auto it = edge_stack.rbegin(); it != edge_stack.rend(); ++it) {
      cycle_edges.insert(cycle_edges.begin(), *it);
      if (out.lock_edges[*it].from == back_to) break;
    }
    std::vector<std::string> locks;
    for (const std::size_t e : cycle_edges) {
      locks.push_back(out.lock_edges[e].from);
    }
    // Canonical form so A->B->A and B->A->B report once.
    std::vector<std::string> canon = locks;
    std::sort(canon.begin(), canon.end());
    if (!reported.insert(canon).second) return;

    std::string chain;
    for (const std::string& lock : locks) chain += lock + " -> ";
    chain += back_to;
    const LockEdge& anchor = out.lock_edges[cycle_edges.front()];
    Finding finding;
    finding.file = anchor.loc.file;
    finding.line = anchor.loc.line;
    finding.col = anchor.loc.col;
    finding.rule = "lock-order";
    finding.message = "lock acquisition cycle: " + chain;
    for (const std::size_t e : cycle_edges) {
      out.lock_edges[e].in_cycle = true;
      const LockEdge& edge = out.lock_edges[e];
      std::string step = edge.from + " -> " + edge.to + " in " +
                         edge.function + " at " + edge.loc.str();
      for (const std::string& hop : edge.via) step += " via " + hop;
      finding.path.push_back(std::move(step));
    }
    if (!suppressed(db, finding)) out.findings.push_back(std::move(finding));
  };

  for (const std::string& start : nodes) {
    if (color[start] != 0) continue;
    // Stack of (node, next-edge-cursor).
    std::vector<std::pair<std::string, std::size_t>> stack;
    stack.emplace_back(start, 0);
    color[start] = 1;
    while (!stack.empty()) {
      auto& [node, cursor] = stack.back();
      const auto adj_it = adjacency.find(node);
      const std::size_t degree =
          adj_it == adjacency.end() ? 0 : adj_it->second.size();
      if (cursor >= degree) {
        color[node] = 2;
        stack.pop_back();
        if (!edge_stack.empty()) edge_stack.pop_back();
        continue;
      }
      const std::size_t e = adj_it->second[cursor++];
      const std::string& next = out.lock_edges[e].to;
      if (color[next] == 1) {
        edge_stack.push_back(e);
        report_cycle(next);
        edge_stack.pop_back();
      } else if (color[next] == 0) {
        color[next] = 1;
        edge_stack.push_back(e);
        stack.emplace_back(next, 0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: atomic-audit
// ---------------------------------------------------------------------------

bool seqlock_named(const std::string& object) {
  std::string lower;
  lower.reserve(object.size());
  for (const char c : object) {
    lower.push_back(static_cast<char>(
        c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c));
  }
  return lower.find("seq") != std::string::npos ||
         lower.find("epoch") != std::string::npos ||
         lower.find("generation") != std::string::npos;
}

void rule_atomic_audit(const FactsDb& db, AnalysisResult& out) {
  // Approved relaxed patterns: stores/RMWs (counters and gauges publish no
  // ordering), CAS-retry loop conditions, seqlock/epoch reads, and loads
  // whose guarded statement is pure control flow (bounds pruning). What is
  // left — a relaxed load deciding a branch that touches non-atomic shared
  // state — is the classic broken handshake.
  for (const Function& fn : db.functions) {
    for (const AtomicEvent& atomic : fn.atomics) {
      if (!atomic.relaxed || atomic.op != AtomicOp::kLoad) continue;
      if (!atomic.in_condition) continue;
      if (atomic.cond_has_cas) continue;       // CAS retry loop
      if (atomic.guard_pure_control) continue; // pruning bound / early-out
      if (seqlock_named(atomic.object)) continue;
      Finding finding;
      finding.file = atomic.loc.file;
      finding.line = atomic.loc.line;
      finding.col = atomic.loc.col;
      finding.rule = "atomic-audit";
      finding.message =
          "relaxed load of `" + atomic.object +
          "` guards a branch that mutates state — a memory_order_relaxed "
          "read synchronizes nothing; use acquire (or prove the guarded "
          "block touches only atomics and suppress with a reason)";
      finding.path.push_back("in " + describe(fn));
      if (!suppressed(db, finding)) out.findings.push_back(std::move(finding));
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: noalloc
// ---------------------------------------------------------------------------

bool obs_layer_file(const std::string& file) {
  return file.find("/obs/") != std::string::npos ||
         file.rfind("obs/", 0) == 0;
}

void rule_noalloc(const FactsDb& db, const Resolver& resolver,
                  AnalysisResult& out) {
  const std::size_t n = db.functions.size();
  std::set<std::string> method_names;
  for (const Function& fn : db.functions) {
    if (!fn.cls.empty()) method_names.insert(fn.name);
  }

  for (std::size_t root = 0; root < n; ++root) {
    if (!db.functions[root].noalloc) continue;
    // DFS from each annotated root. The walk stops at MEMPART_ALLOC_BOUNDARY
    // functions (audited cold paths), at the obs layer (gate-checked and
    // dynamically pinned separately), and at unresolved callees.
    std::vector<std::pair<std::size_t, std::vector<std::string>>> stack;
    std::set<std::size_t> visited;
    stack.emplace_back(root, std::vector<std::string>{});
    visited.insert(root);
    while (!stack.empty()) {
      const auto [idx, chain] = stack.back();
      stack.pop_back();
      const Function& fn = db.functions[idx];
      for (const AllocEvent& alloc : fn.allocs) {
        if (alloc.grow_call && method_names.count(alloc.what) != 0) {
          // The grow spelling matches a method this program defines; the
          // matching CallEvent recurses into it, so any real allocation is
          // reported inside the definition instead of at the call site.
          continue;
        }
        Finding finding;
        finding.file = alloc.loc.file;
        finding.line = alloc.loc.line;
        finding.col = alloc.loc.col;
        finding.rule = "noalloc";
        finding.message =
            "`" + alloc.what + "`" +
            (alloc.grow_call && !alloc.receiver.empty()
                 ? " on `" + alloc.receiver + "`"
                 : std::string()) +
            " allocates but is reachable from MEMPART_NOALLOC root " +
            db.functions[root].qualified() +
            " — move it behind a MEMPART_ALLOC_BOUNDARY or preallocate";
        finding.path.push_back(describe(db.functions[root]));
        for (const std::string& hop : chain) finding.path.push_back(hop);
        if (idx != root) finding.path.push_back(describe(fn));
        if (!suppressed(db, finding)) {
          out.findings.push_back(std::move(finding));
        }
      }
      for (const CallEvent& call : fn.calls) {
        for (const std::size_t callee : resolver.resolve(call, fn)) {
          const Function& target = db.functions[callee];
          if (target.alloc_boundary) continue;
          if (obs_layer_file(target.loc.file)) continue;
          if (!visited.insert(callee).second) continue;
          std::vector<std::string> next = chain;
          if (idx != root) next.push_back(describe(fn));
          stack.emplace_back(callee, std::move(next));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: span-coverage
// ---------------------------------------------------------------------------

void rule_span_coverage(const FactsDb& db, const Resolver& resolver,
                        AnalysisResult& out) {
  // Cross-TU upgrade of mempart_lint's obs-span rule: a Partitioner /
  // AccessEngine method defined in a .cpp is covered if it constructs an
  // obs span itself or reaches a function that does through the call graph
  // — in any translation unit, not just same-file delegates.
  const std::size_t n = db.functions.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Function& fn = db.functions[i];
    if (!fn.defined_in_cpp) continue;
    if (fn.cls != "Partitioner" && fn.cls != "AccessEngine") continue;
    if (fn.name == fn.cls || (!fn.name.empty() && fn.name[0] == '~')) {
      continue;  // constructors / destructors
    }
    if (fn.name.rfind("operator", 0) == 0) continue;

    bool covered = false;
    std::vector<std::size_t> stack{i};
    std::set<std::size_t> visited{i};
    while (!covered && !stack.empty()) {
      const std::size_t idx = stack.back();
      stack.pop_back();
      if (db.functions[idx].has_span) {
        covered = true;
        break;
      }
      for (const CallEvent& call : db.functions[idx].calls) {
        for (const std::size_t callee :
             resolver.resolve(call, db.functions[idx])) {
          if (visited.insert(callee).second) stack.push_back(callee);
        }
      }
    }
    if (covered) continue;
    Finding finding;
    finding.file = fn.loc.file;
    finding.line = fn.loc.line;
    finding.col = fn.loc.col;
    finding.rule = "span-coverage";
    finding.message =
        fn.qualified() +
        " reaches no obs span anywhere in its call graph — public "
        "solver/engine entry points must be traceable";
    if (!suppressed(db, finding)) out.findings.push_back(std::move(finding));
  }
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      "lock-order", "atomic-audit", "noalloc", "span-coverage"};
  return kNames;
}

AnalysisResult run_rules(const FactsDb& db,
                         const std::vector<std::string>& rules) {
  const auto wants = [&](const std::string& rule) {
    return rules.empty() ||
           std::find(rules.begin(), rules.end(), rule) != rules.end();
  };
  AnalysisResult out;
  const Resolver resolver(db);
  // The lock graph is always built (it feeds --graph); cycle findings are
  // only kept when the rule is selected.
  AnalysisResult lock_result;
  rule_lock_order(db, resolver, lock_result);
  out.lock_edges = std::move(lock_result.lock_edges);
  if (wants("lock-order")) {
    out.findings = std::move(lock_result.findings);
  }
  if (wants("atomic-audit")) rule_atomic_audit(db, out);
  if (wants("noalloc")) rule_noalloc(db, resolver, out);
  if (wants("span-coverage")) rule_span_coverage(db, resolver, out);
  std::stable_sort(out.findings.begin(), out.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return out;
}

}  // namespace mempart::analyze
