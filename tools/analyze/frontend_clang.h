// Clang AST frontend: drives `clang -Xclang -ast-dump=json` over the
// entries of a compile_commands.json and lowers the dumped AST into the
// analysis IR.
//
// This is the precision frontend — it sees code the way the compiler does
// (macros expanded, templates spelled out, real declaration contexts)
// where the structural frontend only sees tokens. It is also optional:
// the container running tier-1 tests has no clang, so everything here is
// reachable only behind `--frontend clang` (CI) and through the exported
// `lower_clang_tu` hook that unit tests feed hand-built AST JSON.
//
// Lowered facts are cached per translation unit, keyed on the FNV-1a hash
// of the source bytes and the compile command; a cache hit skips the
// multi-second, multi-megabyte AST dump entirely. The cache stores the
// *facts*, not the raw AST — a few KB per TU instead of tens of MB.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "ir.h"

namespace mempart::analyze {

struct CompileCommand {
  std::string file;       ///< absolute or directory-relative source path
  std::string directory;  ///< working directory for the command
  std::vector<std::string> args;  ///< argv, compiler first
};

/// Loads compile_commands.json. Returns false (with a diagnostic in
/// `error`) when the file is missing or not a compilation database —
/// callers turn that into exit code 2.
[[nodiscard]] bool load_compile_commands(const std::string& path,
                                         std::vector<CompileCommand>& out,
                                         std::string& error);

/// Lowers one translation unit's clang AST JSON to facts. Only functions
/// whose definitions sit under `project_root` are kept — system headers
/// pulled into the TU are not this repo's problem. Exposed for tests.
[[nodiscard]] FactsDb lower_clang_tu(const Json& ast,
                                     const std::string& project_root);

struct ClangFrontendOptions {
  std::string compdb_path;
  std::string clang_binary = "clang++";
  std::string cache_dir;      ///< empty disables the facts cache
  std::string filter;         ///< substring filter on TU paths, empty = all
  std::string project_root;
  bool verbose = false;
};

/// Runs the full pipeline: load compile_commands, dump+lower (or cache-hit)
/// each matching TU, merge facts into `db` (replacing any syntax-frontend
/// facts for the same files). Returns false with `error` set on setup
/// failures; per-TU clang failures are reported on `diag` and skipped so
/// one unparsable TU does not hide findings in the rest.
[[nodiscard]] bool run_clang_frontend(const ClangFrontendOptions& options,
                                      FactsDb& db, std::ostream& diag,
                                      std::string& error);

}  // namespace mempart::analyze
