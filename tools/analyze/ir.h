// The analysis IR shared by both mempart_analyze frontends.
//
// mempart_lint sees one token at a time; the rules this tool runs (lock
// ordering, relaxed-atomic auditing, allocation reachability, cross-TU span
// coverage) need *facts about functions*: who acquires which lock while
// holding what, who calls whom, where allocations and relaxed atomics sit.
// Both frontends — the dependency-free structural extractor that works on
// any checkout, and the `clang -Xclang -ast-dump=json` lowering used where
// a compiler is available — reduce source to this same small IR, and every
// rule runs on the IR alone. That keeps rule logic independent of how the
// facts were obtained, and makes the facts serializable: the clang
// frontend caches lowered facts per translation unit keyed on the source
// hash, so unchanged files never pay the AST dump twice.
//
// Identities are name-based, not instance-based: a lock is "the mutex
// spelled `shard.mutex` inside class SolveCache", not a runtime object.
// That is deliberately conservative for rules (striped locks of one family
// collapse to one node; see docs/STATIC_ANALYSIS.md for the implications)
// and is what makes whole-program matching across translation units
// possible without a linker.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "json.h"

namespace mempart::analyze {

struct Loc {
  std::string file;
  int line = 0;
  int col = 0;

  [[nodiscard]] std::string str() const {
    return file + ":" + std::to_string(line) + ":" + std::to_string(col);
  }
};

/// A lock acquisition (scoped guard construction or manual .lock()).
struct AcquireEvent {
  std::string lock;               ///< normalized lock identity
  Loc loc;
  std::vector<std::string> held;  ///< locks already held at this point
};

/// One outgoing call.
struct CallEvent {
  std::string name;       ///< unqualified callee name
  std::string qualifier;  ///< `A::B` for qualified calls, else empty
  bool member = false;    ///< spelled as x.f() / x->f()
  Loc loc;
  std::vector<std::string> held;  ///< locks held at the call site
};

enum class AtomicOp { kLoad, kStore, kRmw, kCas };

/// One atomic operation naming an explicit memory order.
struct AtomicEvent {
  AtomicOp op = AtomicOp::kLoad;
  bool relaxed = false;
  std::string object;  ///< receiver expression text (e.g. "slot.seq")
  Loc loc;
  bool in_condition = false;   ///< lexically inside an if/while/for header
  bool cond_has_cas = false;   ///< that header also spells compare_exchange
  bool guard_pure_control = false;  ///< guarded stmt is bare return/break/continue
};

/// One allocation-introducing construct.
struct AllocEvent {
  std::string what;  ///< "new", "make_unique", "push_back", ...
  bool grow_call = false;  ///< a growing-container member call
  std::string receiver;    ///< receiver text for grow calls
  Loc loc;
};

struct Function {
  std::string name;  ///< unqualified
  std::string cls;   ///< enclosing record chain ("SolveCache", "A::B"), or ""
  Loc loc;
  bool defined_in_cpp = false;
  bool has_span = false;        ///< body constructs an obs span
  bool noalloc = false;         ///< carries MEMPART_NOALLOC
  bool alloc_boundary = false;  ///< carries MEMPART_ALLOC_BOUNDARY
  std::vector<AcquireEvent> acquires;
  std::vector<CallEvent> calls;
  std::vector<AtomicEvent> atomics;
  std::vector<AllocEvent> allocs;

  [[nodiscard]] std::string qualified() const {
    return cls.empty() ? name : cls + "::" + name;
  }
};

/// Whole-program fact store: functions from every file/TU analyzed, plus
/// per-file suppression pragmas and annotation names collected from
/// declarations (a MEMPART_NOALLOC on a header declaration must reach the
/// .cpp definition by name).
struct FactsDb {
  std::vector<Function> functions;
  /// file -> line -> rules allowed on that line
  std::map<std::string, std::map<int, std::set<std::string>>> allows;
  /// annotation carriers by name; entries are qualified ("Cls::fn") when
  /// the spelling allowed it, bare otherwise
  std::set<std::string> noalloc_names;
  std::set<std::string> boundary_names;

  /// Appends `other`'s facts. When `replace_files` is true, functions
  /// already present from the same file+line are replaced instead of
  /// duplicated (clang facts supersede syntax facts for a re-analyzed TU).
  void merge(FactsDb&& other, bool replace_files = false);

  /// Propagates name-level annotations onto function definitions and sorts
  /// functions for deterministic rule output. Call once, after all merges.
  void finalize();

  [[nodiscard]] bool allowed(const std::string& file, int line,
                             const std::string& rule) const;

  /// Facts-cache (de)serialization. `from_json` returns an empty db on any
  /// shape mismatch; callers treat that as a cache miss.
  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static FactsDb from_json(const Json& json);
};

/// FNV-1a over bytes — cache keys for the AST facts cache.
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes,
                                  std::uint64_t seed = 1469598103934665603ULL);

}  // namespace mempart::analyze
