// The paper's motivating application (§2) end to end: LoG edge detection
// over a synthetic gray-scale frame, executed twice —
//   1. directly (software reference),
//   2. out of the partitioned banked memory through the cycle-accurate
//      simulator — proving bit-exact equality and the 13x bandwidth gain.
#include <iostream>

#include "common/table.h"
#include "core/partitioner.h"
#include "img/banked_convolve.h"
#include "img/convolve.h"
#include "img/edge_ops.h"
#include "img/morphology.h"
#include "img/synthetic.h"
#include "pattern/pattern_library.h"

int main() {
  using namespace mempart;

  // A QVGA-scale frame keeps the full cycle-exact simulation quick; the
  // partitioning itself is resolution-independent.
  const Count width = 320;
  const Count height = 240;
  const img::Image frame = img::edge_scene(width, height, /*seed=*/42);
  const Kernel log_kernel = patterns::log5x5_kernel();

  std::cout << "LoG edge detection on a synthetic " << width << 'x' << height
            << " scene (disk + rectangle + noise)\n\n";

  // Partition the frame buffer for the LoG access pattern.
  PartitionRequest request;
  request.pattern = log_kernel.support();
  request.array_shape = frame.shape();
  PartitionSolution solution = Partitioner::solve(request);
  std::cout << "partitioning: " << solution.summary() << "\n\n";

  // Run through banked memory and through the flat reference memory.
  const sim::CoreAddressMap banked_map(std::move(*solution.mapping));
  const sim::FlatAddressMap flat_map{frame.shape()};

  const img::BankedConvolveResult banked =
      img::convolve_banked(frame, log_kernel, banked_map);
  const img::BankedConvolveResult flat =
      img::convolve_banked(frame, log_kernel, flat_map);
  const img::Image reference = img::convolve(frame, log_kernel);

  std::cout << "functional check: banked == direct? "
            << (banked.output == reference ? "YES" : "NO")
            << ", flat == direct? "
            << (flat.output == reference ? "YES" : "NO") << "\n\n";

  TextTable t;
  t.row({"Memory", "Banks", "Cycles", "Cycles/iter", "Elems/cycle"});
  t.separator();
  t.add_row();
  t.cell("flat (1 bank)")
      .cell(std::int64_t{1})
      .cell(flat.stats.cycles)
      .cell(flat.stats.avg_cycles_per_iteration(), 2)
      .cell(flat.stats.effective_bandwidth(), 2);
  t.add_row();
  t.cell("partitioned")
      .cell(banked_map.num_banks())
      .cell(banked.stats.cycles)
      .cell(banked.stats.avg_cycles_per_iteration(), 2)
      .cell(banked.stats.effective_bandwidth(), 2);
  t.print(std::cout);

  // Post-process to an edge map like a real pipeline would.
  const img::Image edges = img::log_edges(frame, /*threshold=*/80);
  std::cout << "\nedge pixels: " << 100.0 * img::edge_density(edges)
            << "% of the frame\n";

  // Second detector from the paper's benchmark set: the morphological
  // gradient under the SE cross (ref. [11]), banked with its own 5-bank
  // partition — the SE row of Table 1 in action.
  PartitionRequest se_req;
  se_req.pattern = patterns::structure_element();
  se_req.array_shape = frame.shape();
  const PartitionSolution se_sol = Partitioner::solve(se_req);
  const img::Image morph_edges =
      img::morphological_gradient(frame, patterns::structure_element());
  Count strong = 0;
  for (img::Sample s : morph_edges.data()) {
    if (s >= 60) ++strong;
  }
  std::cout << "SE morphological gradient (banks="
            << se_sol.num_banks() << ", 1 cycle/window): "
            << 100.0 * static_cast<double>(strong) /
                   static_cast<double>(morph_edges.size())
            << "% strong-edge pixels\n";
  std::cout << "speedup from partitioning: "
            << static_cast<double>(flat.stats.cycles) /
                   static_cast<double>(banked.stats.cycles)
            << "x fewer memory cycles\n";
  return 0;
}
