// The whole flow a high-level synthesis pass would run, as one program:
//
//   C-like stencil source  --parse-->  kernel + access pattern
//   pattern                --solve-->  banking (B, F) + delta_II
//   solution               --emit--->  synthesizable Verilog + testbench
//                          --persist-> solution record for later stages
//
// With a path argument the source is read from a file; without arguments it
// compiles the paper's Fig. 1(b) LoG stencil.
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/solution_io.h"
#include "hw/rtl_gen.h"
#include "loopnest/pipeline.h"
#include "loopnest/stencil_parser.h"
#include "loopnest/stencil_program.h"
#include "pattern/pattern_io.h"

namespace {

constexpr const char* kFig1bSource =
    "for (i = 3; i <= 638; i++)\n"
    "  for (j = 3; j <= 478; j++)\n"
    "    Y[i][j] = -X[i-2][j] - X[i-1][j-1] - 2*X[i-1][j] - X[i-1][j+1]\n"
    "              - X[i][j-2] - 2*X[i][j-1] + 16*X[i][j] - 2*X[i][j+1]\n"
    "              - X[i][j+2] - X[i+1][j-1] - 2*X[i+1][j] - X[i+1][j+1]\n"
    "              - X[i+2][j];\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace mempart;

  std::string source = kFig1bSource;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in.good()) {
      std::cerr << "cannot open " << argv[1] << '\n';
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }

  std::cout << "=== source ===\n" << source << '\n';

  // Front end: source -> kernel + pattern.
  const loopnest::ParsedStencil parsed = loopnest::parse_stencil(source);
  const Pattern pattern = parsed.kernel.support().normalized();
  std::cout << "=== analysis ===\n"
            << "output array: " << parsed.output_array << '\n'
            << "input array:  " << parsed.input_array << " indexed by (";
  for (size_t i = 0; i < parsed.loop_vars.size(); ++i) {
    std::cout << (i ? ", " : "") << parsed.loop_vars[i];
  }
  std::cout << ")\naccess pattern (" << pattern.size() << " reads):\n"
            << render_pattern_2d(pattern) << '\n';

  // Middle end: partition the input array.
  PartitionRequest request;
  request.pattern = pattern;
  request.array_shape = NdShape({640, 480});
  const PartitionSolution solution = Partitioner::solve(request);
  std::cout << "=== partitioning ===\n" << solution.summary() << "\n\n";

  const loopnest::StencilProgram program(NdShape({640, 480}), pattern,
                                         parsed.input_array);
  const loopnest::PipelineEstimate pipe =
      loopnest::estimate_pipeline(program, solution.delta_ii());
  std::cout << "pipelined loop: II=" << pipe.ii << ", "
            << pipe.total_cycles << " cycles for " << pipe.iterations
            << " iterations (" << pipe.speedup_vs_serial
            << "x vs unpartitioned memory)\n\n";

  // Back end: Verilog + persisted decision.
  const hw::AddrGenIr ir = hw::build_addr_gen_ir(*solution.mapping);
  std::cout << "=== generated address generator ===\n"
            << hw::emit_verilog(ir) << '\n';
  std::cout << "=== generated testbench (3 vectors) ===\n"
            << hw::emit_verilog_testbench(
                   ir, {{0, 0}, {100, 200}, {639, 479}})
            << '\n';
  std::cout << "=== solution record ===\n"
            << write_solution_record(request, solution);
  return 0;
}
