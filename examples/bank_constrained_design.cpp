// Design-space exploration under a bank budget (constraint 2 of Problem 1).
//
// Scenario: an FPGA design has block-RAM and routing budget for at most
// N_max banks per array. For each benchmark pattern, sweep N_max and show
// what each constraint strategy delivers — banks, access cycles, storage
// overhead, and the estimated address-generation logic — so a designer can
// pick the operating point.
#include <iostream>

#include "common/table.h"
#include "core/overhead.h"
#include "core/advisor.h"
#include "core/partitioner.h"
#include "hw/addr_gen.h"
#include "hw/bram.h"
#include "pattern/pattern_library.h"

int main() {
  using namespace mempart;
  const NdShape frame({640, 480});

  for (const Pattern& pattern :
       {patterns::log5x5(), patterns::canny5x5(), patterns::gaussian9()}) {
    PartitionRequest base;
    base.pattern = pattern;
    const PartitionSolution free_solution = Partitioner::solve(base);
    const Count nf = free_solution.num_banks();

    std::cout << "=== " << pattern.name() << ": m = " << pattern.size()
              << " parallel reads, unconstrained needs " << nf
              << " banks ===\n";
    TextTable t;
    t.row({"Nmax", "strategy", "banks", "cycles", "ovh elems", "ovh blocks",
           "~addr LUT"});
    t.separator();

    for (Count nmax = nf; nmax >= 2; nmax = nmax / 2) {
      for (auto strategy :
           {ConstraintStrategy::kFastFold, ConstraintStrategy::kSameSize}) {
        PartitionRequest req = base;
        req.max_banks = nmax;
        req.strategy = strategy;
        req.array_shape = frame;
        const PartitionSolution sol = Partitioner::solve(req);
        const hw::AddressGenCost hwcost = hw::estimate_addr_gen(
            sol.transform, sol.num_banks(), pattern.size());
        t.add_row();
        t.cell(nmax)
            .cell(strategy == ConstraintStrategy::kFastFold ? "fast"
                                                            : "same-size")
            .cell(sol.num_banks())
            .cell(sol.access_cycles())
            .cell(sol.storage_overhead_elements())
            .cell(hw::overhead_blocks(sol.storage_overhead_elements()))
            .cell(hwcost.lut_estimate, 0);
      }
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Reading the tables: halving the bank budget roughly doubles\n"
               "access cycles (fast fold) while the same-size sweep sometimes\n"
               "finds a smaller N with the same cycles; storage overhead\n"
               "depends on divisibility of the innermost extent, not on the\n"
               "budget monotonically.\n\n";

  // The advisor condenses all of the above into the Pareto frontier.
  std::cout << "=== Pareto frontier for LoG on " << frame.to_string()
            << " (explore_design_space) ===\n";
  TextTable frontier;
  frontier.row({"banks", "cycles", "ovh elems", "how"});
  frontier.separator();
  for (const DesignPoint& p : explore_design_space(patterns::log5x5(), frame)) {
    frontier.add_row();
    frontier.cell(p.banks)
        .cell(p.access_cycles)
        .cell(p.overhead_elements)
        .cell(p.label);
  }
  frontier.print(std::cout);
  std::cout << "\nEvery listed point is undominated: fewer banks always cost\n"
               "cycles or bandwidth; the designer just picks a row.\n";
  return 0;
}
