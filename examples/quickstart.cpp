// Quickstart: partition a memory array for an access pattern in ~20 lines.
//
// Scenario: a hardware accelerator reads the 13-element Laplacian-of-
// Gaussian constellation from a 640x480 frame buffer every cycle. Find a
// banking that serves all 13 reads simultaneously, and inspect it.
#include <iostream>

#include "core/partitioner.h"
#include "pattern/pattern_io.h"
#include "pattern/pattern_library.h"

int main() {
  using namespace mempart;

  // 1. Describe the access pattern — from the library, from offsets, or
  //    from ASCII art:
  const Pattern pattern = parse_pattern_2d(
      "..#..\n"
      ".###.\n"
      "#####\n"
      ".###.\n"
      "..#..\n",
      "LoG");

  // 2. Ask the partitioner for banking of a concrete array.
  PartitionRequest request;
  request.pattern = pattern;
  request.array_shape = NdShape({640, 480});
  const PartitionSolution solution = Partitioner::solve(request);

  // 3. Use the solution.
  std::cout << "pattern:  " << pattern.to_string() << '\n'
            << "solution: " << solution.summary() << '\n'
            << '\n'
            << "bank of element (100, 200):    "
            << solution.mapping->bank_of({100, 200}) << '\n'
            << "offset inside that bank:       "
            << solution.mapping->offset_of({100, 200}) << '\n'
            << "bank capacity (elements):      "
            << solution.mapping->bank_capacity(0) << '\n'
            << "storage overhead (elements):   "
            << solution.storage_overhead_elements() << '\n'
            << "cycles per 13-element access:  " << solution.access_cycles()
            << '\n';

  // 4. The per-offset bank assignment proves conflict freedom directly.
  std::cout << "\nbank index of each pattern element:\n  ";
  for (size_t i = 0; i < solution.pattern_banks.size(); ++i) {
    std::cout << (i ? ", " : "") << solution.pattern_banks[i];
  }
  std::cout << "\n(13 distinct banks -> all reads happen in one cycle)\n";
  return 0;
}
