// Multidimensional showcase: 3-D Sobel edge detection over a volume — the
// paper's hardest benchmark (n = 3, m = 26, 27 banks). Demonstrates that
// the closed-form transform generalises beyond images: partition once for
// the full 26-voxel neighbourhood, then stream the z-gradient kernel out of
// the banked volume with zero conflicts.
#include <iostream>

#include "baseline/ltb.h"
#include "core/partitioner.h"
#include "img/banked_convolve.h"
#include "img/convolve.h"
#include "img/edge_ops.h"
#include "img/synthetic.h"
#include "pattern/pattern_library.h"

int main() {
  using namespace mempart;

  const img::Image volume = img::ball_volume(24, 24, 20);
  const Pattern neighbourhood = patterns::sobel3d();

  std::cout << "3-D Sobel over a " << volume.shape().to_string()
            << " volume (bright ball in dark field)\n\n";

  // Partition for the full 26-voxel neighbourhood — the union of all three
  // directional kernels, so one banking serves Gx, Gy and Gz passes.
  PartitionRequest request;
  request.pattern = neighbourhood;
  request.array_shape = volume.shape();
  PartitionSolution solution = Partitioner::solve(request);
  std::cout << "partitioning: " << solution.summary() << '\n';

  // Contrast with what the exhaustive baseline would have paid to find it.
  const baseline::LtbSolution ltb = baseline::ltb_solve(neighbourhood);
  std::cout << "LTB baseline: banks=" << ltb.num_banks
            << " ops=" << ltb.ops.arithmetic() << " (ours: "
            << solution.ops.arithmetic() << " ops, "
            << static_cast<double>(ltb.ops.arithmetic()) /
                   static_cast<double>(solution.ops.arithmetic())
            << "x less)\n\n";

  const sim::CoreAddressMap map(std::move(*solution.mapping));
  const Kernel gz = patterns::sobel3d_z_kernel();
  const img::BankedConvolveResult banked =
      img::convolve_banked(volume, gz, map);
  const img::Image reference = img::convolve(volume, gz);

  std::cout << "banked z-gradient == direct? "
            << (banked.output == reference ? "YES" : "NO") << '\n';
  std::cout << "cycles/iteration: " << banked.stats.avg_cycles_per_iteration()
            << " (conflict cycles: " << banked.stats.conflict_cycles
            << ")\n";
  std::cout << "effective bandwidth: " << banked.stats.effective_bandwidth()
            << " voxels/cycle from " << map.num_banks() << " banks\n";

  // Where does the ball's surface respond?
  const img::Image response = img::sobel3d_z_response(volume);
  img::Sample peak = 0;
  for (img::Sample s : response.data()) {
    peak = std::max<img::Sample>(peak, std::llabs(s));
  }
  std::cout << "\npeak |Gz| response: " << peak
            << " (zero in flat regions, maximal at the ball surface)\n";
  return 0;
}
