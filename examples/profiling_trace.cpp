// Profiling a solve + simulation with the observability layer.
//
// Scenario: you want to see where time goes when partitioning the Canny
// constellation and replaying its loop nest, and how evenly the resulting
// banks are loaded. This program enables tracing and metrics
// programmatically (the CLI equivalent is `mempart profile --pattern Canny
// --shape 640x480 --trace trace.json --metrics metrics.json`), runs the
// pipeline, prints the span tree, and writes both export files.
#include <iostream>

#include "core/partitioner.h"
#include "loopnest/schedule.h"
#include "loopnest/stencil_program.h"
#include "obs/metrics.h"
#include "obs/sinks.h"
#include "obs/trace.h"
#include "pattern/pattern_library.h"
#include "sim/address_map.h"

int main() {
  using namespace mempart;

  // 1. Switch the layer on (MEMPART_TRACE=1 / MEMPART_METRICS=1 in the
  //    environment would do the same without touching code).
  obs::enable();

  // 2. Run the instrumented pipeline: closed-form solve, then a
  //    cycle-accurate replay of the full stencil loop nest.
  const Pattern pattern = patterns::canny5x5();
  PartitionRequest request;
  request.pattern = pattern;
  request.array_shape = NdShape({640, 480});

  sim::AccessStats stats;
  {
    obs::Span span("example.profile");  // spans nest under this root
    span.arg("pattern", pattern.name());
    const PartitionSolution solution = Partitioner::solve(request);
    std::cout << "solution: " << solution.summary() << '\n';

    const sim::CoreAddressMap map(*solution.mapping);
    const loopnest::StencilProgram program(*request.array_shape, pattern,
                                           pattern.name());
    stats = loopnest::simulate(program, map);
  }
  std::cout << "replay:   " << stats.cycles << " cycles for "
            << stats.iterations << " iterations, " << stats.conflict_cycles
            << " conflict cycles\n\n";

  // 3. Inspect. The text report shows the nested spans with durations;
  //    the same data exports as Chrome trace-event JSON for
  //    chrome://tracing or ui.perfetto.dev.
  std::cout << "span tree:\n" << obs::trace_text_report();
  obs::write_text_file("profile_trace.json", obs::chrome_trace_json());
  obs::write_text_file("profile_metrics.json", obs::metrics_json());
  std::cout << "\nwrote profile_trace.json (open in chrome://tracing) and "
               "profile_metrics.json\n";

  // 4. Metrics answer "how balanced are the banks?" without any JSON:
  //    the simulator publishes a per-bank load histogram and gauges.
  const obs::Registry& registry = obs::Registry::instance();
  std::cout << "\nbank load: min=" << registry.gauge("sim.bank_load.min")
            << " max=" << registry.gauge("sim.bank_load.max")
            << " mean=" << registry.gauge("sim.bank_load.mean")
            << "  (conflict-free => every access pattern read hits its own "
               "bank)\n";
  std::cout << "solver ops: add=" << registry.counter("solver.ops.add")
            << " mul=" << registry.counter("solver.ops.mul")
            << " compare=" << registry.counter("solver.ops.compare")
            << "  (the Table 1 tallies, bridged into the registry)\n";
  return 0;
}
